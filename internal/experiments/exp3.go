package experiments

import (
	"fmt"
	"math"
	"time"

	"omniwindow"
	"omniwindow/internal/afr"
	"omniwindow/internal/dml"
	"omniwindow/internal/telemetry"
	"omniwindow/internal/window"
)

// Exp3Row is one worker's measured transfer time for one iteration
// (Figure 9's series).
type Exp3Row struct {
	Iteration int
	Worker    int
	// MeasuredNs is the in-network measurement (OmniWindow user-defined
	// windows + span app).
	MeasuredNs int64
	// ExactNs is the host-side ground truth.
	ExactNs int64
	// Ratio is the gradient compression ratio in effect.
	Ratio int
}

// Exp3Result is the Figure 9 reproduction.
type Exp3Result struct {
	Rows    []Exp3Row
	Workers int
}

// Table renders sampled iterations.
func (r Exp3Result) Table() string {
	rows := make([][]string, 0)
	for _, row := range r.Rows {
		if row.Iteration%8 != 0 {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Iteration),
			fmt.Sprintf("%d", row.Worker),
			fmt.Sprintf("%d", row.Ratio),
			fmt.Sprintf("%.1f", float64(row.MeasuredNs)/1e3),
			fmt.Sprintf("%.1f", float64(row.ExactNs)/1e3),
		})
	}
	return table([]string{"Iter", "Worker", "Ratio", "Measured(us)", "Exact(us)"}, rows)
}

// MaxRelError returns the worst measurement error across all rows.
func (r Exp3Result) MaxRelError() float64 {
	worst := 0.0
	for _, row := range r.Rows {
		if row.ExactNs == 0 {
			continue
		}
		e := math.Abs(float64(row.MeasuredNs-row.ExactNs)) / float64(row.ExactNs)
		if e > worst {
			worst = e
		}
	}
	return worst
}

// RunExp3 reproduces Exp#3 (Figure 9): OmniWindow monitors a parameter-
// server training job through user-defined signals — each packet carries
// its training iteration, the sub-window adopts it, and a span app records
// each worker's first-to-last gradient packet per iteration.
func RunExp3(cfg dml.Config) Exp3Result {
	pkts := dml.Generate(cfg)
	exact := dml.IterationTimes(pkts, cfg.Workers, cfg.Iterations)

	const slots = 1024
	d, err := omniwindow.New(omniwindow.Config{
		Signal: window.UserSignal{},
		Plan:   window.Tumbling(1), // one window per training iteration
		Kind:   afr.Max,
		AppFactory: func(region int) afr.StateApp {
			return telemetry.NewSpanApp(slots, uint64(region))
		},
		Slots:         slots,
		CaptureValues: true,
		Tracker:       afr.TrackerConfig{BufferKeys: 256, BloomBits: 1 << 14, BloomHashes: 3},
		// DML iterations last single-digit milliseconds; collection must
		// start well within one iteration so the shared regions rotate
		// cleanly (C&R time << window, §6).
		Grace: 50 * time.Microsecond,
	})
	if err != nil {
		panic(fmt.Sprintf("exp3: %v", err))
	}
	results := d.Run(pkts)

	res := Exp3Result{Workers: cfg.Workers}
	for _, w := range results {
		iter := int(w.Start)
		if iter >= cfg.Iterations {
			continue
		}
		for wk := 0; wk < cfg.Workers; wk++ {
			res.Rows = append(res.Rows, Exp3Row{
				Iteration:  iter,
				Worker:     wk,
				MeasuredNs: int64(w.Values[dml.WorkerKey(wk)]),
				ExactNs:    exact[wk][iter],
				Ratio:      cfg.Ratio(iter),
			})
		}
	}
	return res
}
