package experiments

import (
	"fmt"
	"time"

	"omniwindow"
	"omniwindow/internal/afr"
	"omniwindow/internal/baseline"
	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
	"omniwindow/internal/telemetry"
	"omniwindow/internal/window"
)

// AblationMergeRow is one strategy of ablation A1.
type AblationMergeRow struct {
	Strategy  string
	Precision float64
	Recall    float64
}

// AblationMergeResult compares the three ways to merge sub-windows that
// §4.1 discusses: merging per-sub-window RESULTS (loses sub-threshold
// flows), merging sub-window sketch STATES (amplifies counter conflicts),
// and OmniWindow's AFR merging.
type AblationMergeResult struct {
	Rows []AblationMergeRow
}

// Table renders the comparison.
func (r AblationMergeResult) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Strategy, pct(row.Precision), pct(row.Recall)})
	}
	return table([]string{"Merge strategy", "Precision", "Recall"}, rows)
}

// RunAblationMerge evaluates heavy-hitter detection over merged tumbling
// windows with the three strategies, against the exact ideal.
func RunAblationMerge(sc Scale) AblationMergeResult {
	pkts := Exp2Trace(sc)
	subMem := sc.SubSketchMemory()
	nSub := int(sc.Duration / sc.SubWindowNs)

	// Per-sub-window CM sketches plus exact key sets (every strategy
	// gets the same per-sub-window information).
	sketches := make([]*sketch.CountMin, nSub)
	keys := make([]map[packet.FlowKey]bool, nSub)
	for i := range sketches {
		sketches[i] = sketch.NewCountMinBytes(4, subMem, uint64(sc.Seed))
		keys[i] = make(map[packet.FlowKey]bool)
	}
	for i := range pkts {
		swi := int(pkts[i].Time / sc.SubWindowNs)
		if swi < 0 || swi >= nSub {
			continue
		}
		sketches[swi].Update(pkts[i].Key, 1)
		keys[swi][pkts[i].Key] = true
	}

	countEval := func(win []packet.Packet) map[packet.FlowKey]uint64 {
		m := make(map[packet.FlowKey]uint64)
		for i := range win {
			m[win[i].Key]++
		}
		return m
	}
	ideal := detectOutputs(baseline.RunIdeal(pkts, sc.Duration, sc.WindowNs(), sc.WindowNs(), countEval), heavyThreshold)

	spans := baseline.Spans(sc.Duration, sc.WindowNs(), sc.WindowNs())
	var resultMerge, stateMerge, afrMerge []map[packet.FlowKey]bool
	for _, sp := range spans {
		from := int(sp.Start / sc.SubWindowNs)
		to := int(sp.End / sc.SubWindowNs)
		if to > nSub {
			to = nSub
		}

		// Strategy 1: merge per-sub-window RESULTS — a flow must cross
		// the threshold within a single sub-window to be reported.
		rm := make(map[packet.FlowKey]bool)
		for i := from; i < to; i++ {
			for k := range keys[i] {
				if sketches[i].Query(k) >= heavyThreshold {
					rm[k] = true
				}
			}
		}
		resultMerge = append(resultMerge, rm)

		// Strategy 2: merge sub-window STATES, then query — counter
		// conflicts from every sub-window pile into one sketch.
		merged := sketch.NewCountMinBytes(4, subMem, uint64(sc.Seed))
		for i := from; i < to; i++ {
			merged.Merge(sketches[i])
		}
		sm := make(map[packet.FlowKey]bool)
		for i := from; i < to; i++ {
			for k := range keys[i] {
				if merged.Query(k) >= heavyThreshold {
					sm[k] = true
				}
			}
		}
		stateMerge = append(stateMerge, sm)

		// Strategy 3: AFRs — query each sub-window's sketch for its own
		// keys and sum the per-flow records.
		sums := make(map[packet.FlowKey]uint64)
		for i := from; i < to; i++ {
			for k := range keys[i] {
				sums[k] += sketches[i].Query(k)
			}
		}
		am := make(map[packet.FlowKey]bool)
		for k, v := range sums {
			if v >= heavyThreshold {
				am[k] = true
			}
		}
		afrMerge = append(afrMerge, am)
	}

	mk := func(name string, got []map[packet.FlowKey]bool) AblationMergeRow {
		d := scoreWindows(got, ideal)
		return AblationMergeRow{Strategy: name, Precision: d.Precision(), Recall: d.Recall()}
	}
	return AblationMergeResult{Rows: []AblationMergeRow{
		mk("merge-results", resultMerge),
		mk("merge-states", stateMerge),
		mk("AFR (OmniWindow)", afrMerge),
	}}
}

// AblationSALUResult compares SALU usage of the flat concatenated layout
// (one register spanning both regions, one SALU) against naive per-region
// registers (ablation A2, §6).
type AblationSALUResult struct {
	FlatSALUs    int
	PerRegion    int
	FlatSRAMKB   int
	PerRegionKB  int
	RegionsCount int
}

// Table renders the comparison.
func (r AblationSALUResult) Table() string {
	return table([]string{"Layout", "SALUs", "SRAM(KB)"}, [][]string{
		{"flat (OmniWindow)", fmt.Sprintf("%d", r.FlatSALUs), fmt.Sprintf("%d", r.FlatSRAMKB)},
		{fmt.Sprintf("per-region x%d", r.RegionsCount), fmt.Sprintf("%d", r.PerRegion), fmt.Sprintf("%d", r.PerRegionKB)},
	})
}

// RunAblationSALU builds both layouts for a 4-row sketch over `regions`
// regions and reports the SALU bill.
func RunAblationSALU(rows, slots, regions int) AblationSALUResult {
	flat := newLedgerProbe()
	for r := 0; r < rows; r++ {
		// One register holds all regions concatenated: one SALU.
		flat.book(slots*regions*8, 1)
	}
	naive := newLedgerProbe()
	for r := 0; r < rows; r++ {
		for g := 0; g < regions; g++ {
			naive.book(slots*8, 1)
		}
	}
	return AblationSALUResult{
		FlatSALUs:    flat.salus,
		PerRegion:    naive.salus,
		FlatSRAMKB:   flat.kb,
		PerRegionKB:  naive.kb,
		RegionsCount: regions,
	}
}

type ledgerProbe struct{ salus, kb int }

func newLedgerProbe() *ledgerProbe { return &ledgerProbe{} }
func (l *ledgerProbe) book(bytes, salus int) {
	l.salus += salus
	l.kb += (bytes + 1023) / 1024
}

// AblationFlowkeyRow is one buffer size of ablation A3.
type AblationFlowkeyRow struct {
	BufferKeys  int
	Spills      int
	CollectTime time.Duration
}

// AblationFlowkeyResult sweeps the data-plane flowkey array size: small
// arrays spill more keys to the controller (bandwidth + injection time),
// large arrays cost switch SRAM (Algorithm 1's trade-off, also Exp#6's
// CPC vs DPC vs OW comparison).
type AblationFlowkeyResult struct {
	Rows []AblationFlowkeyRow
}

// Table renders the sweep.
func (r AblationFlowkeyResult) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.BufferKeys),
			fmt.Sprintf("%d", row.Spills),
			fmt.Sprintf("%.2fms", float64(row.CollectTime.Microseconds())/1e3),
		})
	}
	return table([]string{"fk_buffer keys", "Spilled keys", "Max C&R time"}, rows)
}

// RunAblationFlowkey sweeps the buffer size over a fixed workload.
func RunAblationFlowkey(sc Scale, bufferSizes []int) AblationFlowkeyResult {
	pkts := Exp2Trace(sc)
	var res AblationFlowkeyResult
	for _, buf := range bufferSizes {
		d, err := omniwindow.New(omniwindow.Config{
			SubWindow: time.Duration(sc.SubWindowNs),
			Plan:      window.Tumbling(sc.WindowSub),
			Kind:      afr.Frequency,
			Threshold: heavyThreshold,
			AppFactory: func(region int) afr.StateApp {
				s := sketch.NewCountMinBytes(4, sc.SubSketchMemory(), uint64(sc.Seed)+uint64(region))
				return telemetry.NewFrequencyApp(s, s.Width())
			},
			Slots:   sketch.NewCountMinBytes(4, sc.SubSketchMemory(), 1).Width(),
			Tracker: afr.TrackerConfig{BufferKeys: buf, BloomBits: maxi(buf*32, 1<<16), BloomHashes: 3},
		})
		if err != nil {
			panic(fmt.Sprintf("ablation flowkey: %v", err))
		}
		d.RunFor(pkts, sc.Duration)
		st := d.Stats()
		res.Rows = append(res.Rows, AblationFlowkeyRow{
			BufferKeys:  buf,
			Spills:      st.Spills,
			CollectTime: st.MaxCollectVirtual,
		})
	}
	return res
}

// AblationSubWindowRow is one sub-window count of ablation A5.
type AblationSubWindowRow struct {
	SubWindows int
	Precision  float64
	Recall     float64
}

// AblationSubWindowResult sweeps how many sub-windows a 500 ms window is
// split into (with per-sub-window memory scaled to window/subwindows):
// more sub-windows mean finer window granularity but more frequent C&R.
type AblationSubWindowResult struct {
	Rows []AblationSubWindowRow
}

// Table renders the sweep.
func (r AblationSubWindowResult) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{fmt.Sprintf("%d", row.SubWindows), pct(row.Precision), pct(row.Recall)})
	}
	return table([]string{"Sub-windows/window", "Precision", "Recall"}, rows)
}

// RunAblationSubWindows evaluates heavy hitters with W = 2, 5, 10
// sub-windows per window.
func RunAblationSubWindows(sc Scale, counts []int) AblationSubWindowResult {
	pkts := Exp2Trace(sc)
	countEval := func(win []packet.Packet) map[packet.FlowKey]uint64 {
		m := make(map[packet.FlowKey]uint64)
		for i := range win {
			m[win[i].Key]++
		}
		return m
	}
	ideal := detectOutputs(baseline.RunIdeal(pkts, sc.Duration, sc.WindowNs(), sc.WindowNs(), countEval), heavyThreshold)

	var res AblationSubWindowResult
	for _, w := range counts {
		subNs := sc.WindowNs() / int64(w)
		mem := sc.SketchMemory * 5 / (4 * w) // window memory split with 25% headroom
		d, err := omniwindow.New(omniwindow.Config{
			SubWindow: time.Duration(subNs),
			Plan:      window.Tumbling(w),
			Kind:      afr.Frequency,
			Threshold: heavyThreshold,
			AppFactory: func(region int) afr.StateApp {
				s := sketch.NewCountMinBytes(4, mem, uint64(sc.Seed)+uint64(region))
				return telemetry.NewFrequencyApp(s, s.Width())
			},
			Slots:   sketch.NewCountMinBytes(4, mem, 1).Width(),
			Tracker: trackerFor(sc),
		})
		if err != nil {
			panic(fmt.Sprintf("ablation subwindows: %v", err))
		}
		got := detectedSets(d.RunFor(pkts, sc.Duration))
		det := scoreWindows(got, ideal)
		res.Rows = append(res.Rows, AblationSubWindowRow{
			SubWindows: w, Precision: det.Precision(), Recall: det.Recall(),
		})
	}
	return res
}
