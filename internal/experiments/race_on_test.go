//go:build race

package experiments

// raceEnabled reports that this binary was built with -race; wall-clock
// performance assertions are meaningless under the detector's
// instrumentation and skip themselves.
const raceEnabled = true
