package experiments

import (
	"fmt"
	"time"

	"omniwindow/internal/simd"
)

// Exp7Row is one (operation, path) timing of Figure 12.
type Exp7Row struct {
	Op        string // "sum" or "max"
	Vectoried bool
	Flows     int
	Time      time.Duration
}

// Exp7Result is the Figure 12 reproduction: time to aggregate the AFRs of
// `Flows` flows with and without the vectorized merge path. These are
// real wall-clock measurements of this controller's kernels (the paper
// uses AVX-512; this implementation substitutes columnar unrolled
// kernels — see DESIGN.md).
type Exp7Result struct {
	Rows []Exp7Row
}

// Table renders times and the vectorization saving.
func (r Exp7Result) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	byOp := map[string][2]time.Duration{}
	for _, row := range r.Rows {
		path := "scalar"
		if row.Vectoried {
			path = "vectorized"
		}
		rows = append(rows, []string{row.Op, path, fmt.Sprintf("%d", row.Flows),
			fmt.Sprintf("%.1f", float64(row.Time.Nanoseconds())/1e3)})
		v := byOp[row.Op]
		if row.Vectoried {
			v[1] = row.Time
		} else {
			v[0] = row.Time
		}
		byOp[row.Op] = v
	}
	s := table([]string{"Op", "Path", "Flows", "Time(us)"}, rows)
	for op, v := range byOp {
		if v[0] > 0 && v[1] > 0 {
			s += fmt.Sprintf("%s: vectorized path saves %s\n", op, pct(1-float64(v[1])/float64(v[0])))
		}
	}
	return s
}

// Reduction returns the fractional time saving of the vectorized path for
// an operation.
func (r Exp7Result) Reduction(op string) float64 {
	var scalar, vec time.Duration
	for _, row := range r.Rows {
		if row.Op != op {
			continue
		}
		if row.Vectoried {
			vec = row.Time
		} else {
			scalar = row.Time
		}
	}
	if scalar == 0 {
		return 0
	}
	return 1 - float64(vec)/float64(scalar)
}

// RunExp7 reproduces Exp#7 (Figure 12) for `flows` AFRs (the paper uses
// 1 M).
func RunExp7(flows int) Exp7Result {
	dst := make([]uint64, flows)
	src := make([]uint64, flows)
	for i := range src {
		dst[i] = uint64(i * 3)
		src[i] = uint64(i * 7)
	}
	// measure runs fn `reps` times over fresh copies and returns the
	// best time (least-noise estimator for short kernels).
	work := make([]uint64, flows)
	measure := func(fn func(d, s []uint64)) time.Duration {
		best := time.Duration(1 << 62)
		for rep := 0; rep < 7; rep++ {
			copy(work, dst)
			start := time.Now()
			fn(work, src)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	var res Exp7Result
	for _, op := range []struct {
		name string
		op   simd.Op
	}{{"sum", simd.OpSum}, {"max", simd.OpMax}} {
		scalar := measure(func(d, s []uint64) { simd.MergeScalar(d, s, op.op) })
		vec := measure(func(d, s []uint64) { simd.Merge(d, s, op.op) })
		res.Rows = append(res.Rows,
			Exp7Row{Op: op.name, Vectoried: false, Flows: flows, Time: scalar},
			Exp7Row{Op: op.name, Vectoried: true, Flows: flows, Time: vec},
		)
	}
	return res
}
