package baseline

import (
	"testing"

	"omniwindow/internal/afr"
	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
	"omniwindow/internal/trace"
)

const ms = trace.Millisecond

func fk(i int) packet.FlowKey {
	return packet.FlowKey{SrcIP: uint32(i), DstPort: 80, Proto: packet.ProtoTCP}
}

func mkTrace(flow, n int, start, spread int64) []packet.Packet {
	out := make([]packet.Packet, n)
	for i := range out {
		var off int64
		if n > 1 {
			off = spread * int64(i) / int64(n-1)
		}
		out[i] = packet.Packet{Key: fk(flow), Size: 100, Time: start + off}
	}
	return out
}

func merge(a ...[]packet.Packet) []packet.Packet {
	var all []packet.Packet
	for _, s := range a {
		all = append(all, s...)
	}
	// insertion sort by time (small test traces)
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].Time < all[j-1].Time; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	return all
}

func countEval(win []packet.Packet) map[packet.FlowKey]uint64 {
	m := make(map[packet.FlowKey]uint64)
	for i := range win {
		m[win[i].Key]++
	}
	return m
}

func TestSpans(t *testing.T) {
	tw := Spans(1000, 250, 250)
	if len(tw) != 4 || tw[3].Start != 750 || tw[3].End != 1000 {
		t.Fatalf("tumbling spans: %+v", tw)
	}
	sl := Spans(1000, 500, 100)
	if len(sl) != 6 || sl[5].Start != 500 {
		t.Fatalf("sliding spans: %+v", sl)
	}
}

func TestSpansValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Spans(100, 0, 10)
}

func TestSlice(t *testing.T) {
	pkts := mkTrace(1, 10, 0, 900)
	got := Slice(pkts, 200, 500)
	for i := range got {
		if got[i].Time < 200 || got[i].Time >= 500 {
			t.Fatalf("slice returned out-of-range packet at %d", got[i].Time)
		}
	}
	if len(Slice(pkts, 5000, 6000)) != 0 {
		t.Fatal("empty slice expected")
	}
}

func TestRunIdealTumblingVsSlidingOnBoundaryBurst(t *testing.T) {
	// Figure 1: a 100-packet burst straddling the 500 ms boundary. Each
	// tumbling window sees ~half; the sliding window positioned over the
	// burst sees all of it.
	burst := mkTrace(7, 100, 450*ms, 100*ms)
	duration := int64(1500 * ms)
	itw := RunIdeal(burst, duration, 500*ms, 500*ms, countEval)
	for _, w := range itw {
		if v := w.Values[fk(7)]; v > 60 {
			t.Fatalf("tumbling window saw %d burst packets — test premise broken", v)
		}
	}
	isw := RunIdeal(burst, duration, 500*ms, 100*ms, countEval)
	var best uint64
	for _, w := range isw {
		if v := w.Values[fk(7)]; v > best {
			best = v
		}
	}
	if best < 95 {
		t.Fatalf("sliding window missed the burst: best=%d", best)
	}
}

func exactFactory(seed uint64) afr.StateApp {
	return &exactApp{counts: make(map[packet.FlowKey]uint64)}
}

type exactApp struct {
	counts map[packet.FlowKey]uint64
}

func (a *exactApp) Update(p *packet.Packet)         { a.counts[p.Key]++ }
func (a *exactApp) Query(k packet.FlowKey) afr.Attr { return afr.Attr{Value: a.counts[k]} }
func (a *exactApp) Slots() int                      { return 1 }
func (a *exactApp) ResetSlot(i int) {
	if i == 0 {
		a.counts = make(map[packet.FlowKey]uint64)
	}
}

func TestTW2MatchesIdealWithExactState(t *testing.T) {
	pkts := merge(mkTrace(1, 50, 100*ms, 300*ms), mkTrace(2, 80, 600*ms, 300*ms))
	duration := int64(1000 * ms)
	tw2 := RunTumbling(pkts, duration, TumblingConfig{WindowNs: 500 * ms, Regions: 2}, exactFactory, nil)
	ideal := RunIdeal(pkts, duration, 500*ms, 500*ms, countEval)
	if len(tw2) != len(ideal) {
		t.Fatalf("window counts differ: %d vs %d", len(tw2), len(ideal))
	}
	for i := range tw2 {
		for k, v := range ideal[i].Values {
			if tw2[i].Values[k] != v {
				t.Fatalf("window %d key %v: %d vs %d", i, k, tw2[i].Values[k], v)
			}
		}
	}
}

func TestTW1BlackoutLosesTraffic(t *testing.T) {
	// All of flow 1's packets land right after the second window starts,
	// inside TW1's C&R blackout.
	pkts := merge(mkTrace(1, 50, 510*ms, 20*ms), mkTrace(2, 50, 700*ms, 100*ms))
	duration := int64(1000 * ms)
	cfg := TumblingConfig{WindowNs: 500 * ms, Regions: 1, CRTimeNs: 100 * ms}
	tw1 := RunTumbling(pkts, duration, cfg, exactFactory, nil)
	if got := tw1[1].Values[fk(1)]; got != 0 {
		t.Fatalf("blackout traffic measured: %d", got)
	}
	if got := tw1[1].Values[fk(2)]; got != 50 {
		t.Fatalf("post-blackout traffic lost: %d", got)
	}
	// TW2 with the same C&R time loses nothing.
	cfg.Regions = 2
	tw2 := RunTumbling(pkts, duration, cfg, exactFactory, nil)
	if got := tw2[1].Values[fk(1)]; got != 50 {
		t.Fatalf("TW2 lost blackout traffic: %d", got)
	}
}

func TestTW1FirstWindowHasNoBlackout(t *testing.T) {
	pkts := mkTrace(1, 20, 10*ms, 50*ms)
	cfg := TumblingConfig{WindowNs: 500 * ms, Regions: 1, CRTimeNs: 100 * ms}
	tw1 := RunTumbling(pkts, 500*ms, cfg, exactFactory, nil)
	if got := tw1[0].Values[fk(1)]; got != 20 {
		t.Fatalf("first window lost traffic: %d", got)
	}
}

func TestRunTumblingKeyExtractor(t *testing.T) {
	pkts := merge(mkTrace(1, 5, 0, 100*ms), mkTrace(2, 5, 0, 100*ms))
	hostFactory := func(seed uint64) afr.StateApp {
		a := &exactApp{counts: make(map[packet.FlowKey]uint64)}
		return &hostApp{exactApp: a}
	}
	out := RunTumbling(pkts, 500*ms, TumblingConfig{WindowNs: 500 * ms, Regions: 2}, hostFactory,
		func(p *packet.Packet) (packet.FlowKey, bool) { return p.Key.DstHostKey(), true })
	host := packet.FlowKey{Proto: packet.ProtoTCP}
	if got := out[0].Values[host]; got != 10 {
		t.Fatalf("host aggregation = %d want 10", got)
	}
}

type hostApp struct{ *exactApp }

func (a *hostApp) Update(p *packet.Packet) { a.counts[p.Key.DstHostKey()]++ }

func TestRunTumblingRegionValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RunTumbling(nil, 100, TumblingConfig{WindowNs: 10, Regions: 3}, exactFactory, nil)
}

func TestDetectThreshold(t *testing.T) {
	w := WindowOutput{Values: map[packet.FlowKey]uint64{fk(1): 5, fk(2): 10}}
	d := w.Detect(10)
	if d[fk(1)] || !d[fk(2)] {
		t.Fatalf("detect = %v", d)
	}
}

func TestRunSlidingSketchOverestimates(t *testing.T) {
	// Flow emits 100 packets in [0, 490 ms) and a 5-packet trickle in
	// [510, 990 ms). A Sliding Sketch queried for the window [500,1000)
	// reports the stale first-window mass on top of the trickle (its
	// documented overestimation); the truth for that window is 5.
	pkts := merge(mkTrace(3, 100, 0, 490*ms), mkTrace(3, 5, 510*ms, 480*ms))
	duration := int64(1000 * ms)
	s := sketch.NewSliding(sketch.NewCountMin(4, 1024, 1), sketch.NewCountMin(4, 1024, 1))
	out := RunSlidingSketch(pkts, duration, SlidingSketchConfig{WindowNs: 500 * ms, SlideNs: 100 * ms}, s, nil, nil)
	var lastVal uint64
	for _, w := range out {
		if w.Start == 500*ms {
			lastVal = w.Values[fk(3)]
		}
	}
	if lastVal < 95 {
		t.Fatalf("sliding sketch should overreport stale window: %d", lastVal)
	}
	// First span [0,500) reports the true mass.
	if out[0].Values[fk(3)] < 95 {
		t.Fatalf("current-window mass missing: %d", out[0].Values[fk(3)])
	}
}

func TestRunSlidingSketchRotationExpires(t *testing.T) {
	// Mass older than two rotations disappears.
	pkts := mkTrace(4, 100, 0, 400*ms)
	duration := int64(2000 * ms)
	s := sketch.NewSliding(sketch.NewCountMin(4, 1024, 2), sketch.NewCountMin(4, 1024, 2))
	out := RunSlidingSketch(pkts, duration, SlidingSketchConfig{WindowNs: 500 * ms, SlideNs: 500 * ms}, s, nil, nil)
	if len(out) != 4 {
		t.Fatalf("windows = %d", len(out))
	}
	if v := out[3].Values[fk(4)]; v != 0 {
		t.Fatalf("ancient mass survived: %d", v)
	}
}
