package baseline

import (
	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
)

// SlidingSketchConfig parameterizes the Sliding Sketch baseline runner.
type SlidingSketchConfig struct {
	// WindowNs is the queried (sliding) window length; the underlying
	// buckets rotate at this period.
	WindowNs int64
	// SlideNs is how often a window result is emitted.
	SlideNs int64
}

// RunSlidingSketch runs the Sliding Sketch baseline: the two-bucket
// sketch rotates every WindowNs and is queried every SlideNs. Keys are
// tracked exactly over the trailing window (candidate generation is not
// what the baseline is measuring); values come from the sketch and —
// deliberately, per the design — contain information of more than one
// sliding window, the overestimation that costs Sliding Sketch precision.
func RunSlidingSketch(pkts []packet.Packet, duration int64, cfg SlidingSketchConfig, s *sketch.Sliding, keyOf func(*packet.Packet) packet.FlowKey, volumeOf func(*packet.Packet) uint64) []WindowOutput {
	spans := Spans(duration, cfg.WindowNs, cfg.SlideNs)
	out := make([]WindowOutput, 0, len(spans))
	next := 0 // next packet index
	rotations := int64(1)
	for _, sp := range spans {
		// Ingest packets up to this window's end, rotating buckets at
		// every WindowNs boundary.
		for next < len(pkts) && pkts[next].Time < sp.End {
			p := &pkts[next]
			for p.Time >= rotations*cfg.WindowNs {
				s.Advance()
				rotations++
			}
			k := p.Key
			if keyOf != nil {
				k = keyOf(p)
			}
			v := uint64(1)
			if volumeOf != nil {
				v = volumeOf(p)
			}
			s.Update(k, v)
			next++
		}
		for sp.End > rotations*cfg.WindowNs {
			s.Advance()
			rotations++
		}
		// Candidate keys: exactly those active in the queried window.
		values := make(map[packet.FlowKey]uint64)
		for _, p := range Slice(pkts, sp.Start, sp.End) {
			k := p.Key
			if keyOf != nil {
				q := p
				k = keyOf(&q)
			}
			if _, ok := values[k]; !ok {
				values[k] = s.Query(k)
			}
		}
		out = append(out, WindowOutput{Span: sp, Values: values})
	}
	return out
}
