// Package baseline implements the window mechanisms OmniWindow is
// evaluated against:
//
//   - ITW / ISW: ideal tumbling and sliding windows computed offline with
//     error-free data structures (the evaluation's ground truth);
//   - TW1: the conventional single-region tumbling window that performs
//     C&R on the same memory it measures with, losing the traffic that
//     arrives during the collect-and-reset blackout;
//   - TW2: the double-region tumbling window (accurate, 2x memory);
//   - the Sliding Sketch adapter used in Exp#2 and Exp#10.
//
// All runners work offline over a sorted trace, emitting one output per
// window so experiments can score precision/recall/ARE against the ideal.
package baseline

import (
	"sort"

	"omniwindow/internal/afr"
	"omniwindow/internal/packet"
)

// Span is one window's time range [Start, End).
type Span struct {
	Start, End int64
}

// WindowOutput is one emitted window's per-flow statistics.
type WindowOutput struct {
	Span
	// Values maps each observed key to its measured statistic.
	Values map[packet.FlowKey]uint64
}

// Detect thresholds a window output into a detection set.
func (w WindowOutput) Detect(threshold uint64) map[packet.FlowKey]bool {
	out := make(map[packet.FlowKey]bool)
	for k, v := range w.Values {
		if v >= threshold {
			out[k] = true
		}
	}
	return out
}

// Spans enumerates the window positions of a trace: windows of windowNs
// advancing by slideNs, ending no later than duration. Tumbling windows
// pass slideNs == windowNs.
func Spans(duration, windowNs, slideNs int64) []Span {
	if windowNs <= 0 || slideNs <= 0 {
		panic("baseline: window and slide must be positive")
	}
	var out []Span
	for start := int64(0); start+windowNs <= duration; start += slideNs {
		out = append(out, Span{Start: start, End: start + windowNs})
	}
	return out
}

// Slice returns the packets of [start, end) from a time-sorted trace via
// binary search.
func Slice(pkts []packet.Packet, start, end int64) []packet.Packet {
	lo := sort.Search(len(pkts), func(i int) bool { return pkts[i].Time >= start })
	hi := sort.Search(len(pkts), func(i int) bool { return pkts[i].Time >= end })
	return pkts[lo:hi]
}

// Eval computes one window's per-flow statistics from its packets.
type Eval func(win []packet.Packet) map[packet.FlowKey]uint64

// RunIdeal evaluates fn over every window position — the ITW (slideNs ==
// windowNs) and ISW (slideNs < windowNs) ground-truth runners.
func RunIdeal(pkts []packet.Packet, duration, windowNs, slideNs int64, eval Eval) []WindowOutput {
	spans := Spans(duration, windowNs, slideNs)
	out := make([]WindowOutput, 0, len(spans))
	for _, sp := range spans {
		out = append(out, WindowOutput{Span: sp, Values: eval(Slice(pkts, sp.Start, sp.End))})
	}
	return out
}

// AppFactory builds a fresh region state (a full-window-budget instance
// for the TW baselines).
type AppFactory func(seed uint64) afr.StateApp

// TumblingConfig parameterizes the conventional tumbling-window baselines.
type TumblingConfig struct {
	// WindowNs is the tumbling window length.
	WindowNs int64
	// Regions is 1 for TW1 and 2 for TW2.
	Regions int
	// CRTimeNs is the collect-and-reset blackout after each boundary.
	// With one region, packets arriving during the blackout are not
	// measured correctly and are lost (TW1's recall gap); with two
	// regions C&R overlaps measurement and the blackout is harmless.
	CRTimeNs int64
	// Seed seeds the per-window state instances.
	Seed uint64
}

// RunTumbling runs TW1/TW2: per window, packets update a region state;
// keys are tracked exactly (the switch OS can read everything), and the
// window output queries each tracked key once at the boundary. track maps
// a packet to the key to query, with ok=false skipping the packet (e.g.
// the query's filter rejects it); nil tracks every packet's 5-tuple.
func RunTumbling(pkts []packet.Packet, duration int64, cfg TumblingConfig, factory AppFactory, track func(*packet.Packet) (packet.FlowKey, bool)) []WindowOutput {
	if cfg.Regions < 1 || cfg.Regions > 2 {
		panic("baseline: TW regions must be 1 or 2")
	}
	spans := Spans(duration, cfg.WindowNs, cfg.WindowNs)
	out := make([]WindowOutput, 0, len(spans))
	apps := make([]afr.StateApp, cfg.Regions)
	for i := range apps {
		apps[i] = factory(cfg.Seed + uint64(i))
	}
	for wi, sp := range spans {
		app := apps[wi%cfg.Regions]
		keys := make(map[packet.FlowKey]bool)
		blackoutEnd := sp.Start + cfg.CRTimeNs
		for _, p := range Slice(pkts, sp.Start, sp.End) {
			if cfg.Regions == 1 && wi > 0 && p.Time < blackoutEnd {
				// TW1: the region is still being collected and reset;
				// this packet's update is lost.
				continue
			}
			q := p
			app.Update(&q)
			if track != nil {
				if k, ok := track(&q); ok {
					keys[k] = true
				}
			} else {
				keys[q.Key] = true
			}
		}
		values := make(map[packet.FlowKey]uint64, len(keys))
		for k := range keys {
			values[k] = app.Query(k).Value
		}
		out = append(out, WindowOutput{Span: sp, Values: values})
		// Reset the region for its next turn (instantaneous for TW2,
		// overlapped; for TW1 the blackout above models the cost).
		for i := 0; i < app.Slots(); i++ {
			app.ResetSlot(i)
		}
	}
	return out
}
