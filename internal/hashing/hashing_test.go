package hashing

import (
	"hash/crc32"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"omniwindow/internal/packet"
)

func randKey(rng *rand.Rand) packet.FlowKey {
	return packet.FlowKey{
		SrcIP:   rng.Uint32(),
		DstIP:   rng.Uint32(),
		SrcPort: uint16(rng.Uint32()),
		DstPort: uint16(rng.Uint32()),
		Proto:   uint8(rng.Uint32()),
	}
}

func TestKey64Deterministic(t *testing.T) {
	k := packet.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	if Key64(k, 42) != Key64(k, 42) {
		t.Fatal("hash not deterministic")
	}
}

func TestKey64SeedSensitivity(t *testing.T) {
	k := packet.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	if Key64(k, 1) == Key64(k, 2) {
		t.Fatal("different seeds produced identical hashes")
	}
}

func TestKey64InputSensitivity(t *testing.T) {
	base := packet.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	variants := []packet.FlowKey{
		{SrcIP: 2, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6},
		{SrcIP: 1, DstIP: 3, SrcPort: 3, DstPort: 4, Proto: 6},
		{SrcIP: 1, DstIP: 2, SrcPort: 4, DstPort: 4, Proto: 6},
		{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 5, Proto: 6},
		{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17},
	}
	h := Key64(base, 7)
	for _, v := range variants {
		if Key64(v, 7) == h {
			t.Fatalf("single-field change did not alter hash: %v", v)
		}
	}
}

func TestIndexInRange(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, proto uint8, seed uint64) bool {
		k := packet.FlowKey{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: proto}
		for _, n := range []int{1, 2, 7, 64, 4096, 1 << 20} {
			i := Index(k, seed, n)
			if i < 0 || i >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestIndexUniformity checks that bucket occupancy over random keys is
// within a loose chi-square-ish bound of uniform.
func TestIndexUniformity(t *testing.T) {
	const buckets, samples = 64, 64 * 2000
	rng := rand.New(rand.NewSource(9))
	counts := make([]int, buckets)
	for i := 0; i < samples; i++ {
		counts[Index(randKey(rng), 1234, buckets)]++
	}
	mean := float64(samples) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-mean) > 6*math.Sqrt(mean) {
			t.Fatalf("bucket %d count %d deviates too far from mean %.1f", b, c, mean)
		}
	}
}

// TestFamilyIndependence verifies that two family members disagree on most
// keys (a sanity proxy for pairwise independence needed by sketch rows).
func TestFamilyIndependence(t *testing.T) {
	fam := NewFamily(4, 99)
	rng := rand.New(rand.NewSource(11))
	same := 0
	const n = 10000
	for i := 0; i < n; i++ {
		k := randKey(rng)
		if fam.Index(0, k, 1024) == fam.Index(1, k, 1024) {
			same++
		}
	}
	// Expected collision rate 1/1024; allow generous slack.
	if same > n/100 {
		t.Fatalf("family members agree too often: %d/%d", same, n)
	}
}

func TestFamilySizeAndSeeds(t *testing.T) {
	fam := NewFamily(5, 7)
	if fam.Size() != 5 {
		t.Fatalf("Size() = %d want 5", fam.Size())
	}
	seen := map[uint64]bool{}
	for i := 0; i < 5; i++ {
		s := fam.Seed(i)
		if seen[s] {
			t.Fatalf("duplicate seed at %d", i)
		}
		seen[s] = true
	}
}

func TestBytes64LengthSensitivity(t *testing.T) {
	a := Bytes64([]byte("abcdefgh"), 5)
	b := Bytes64([]byte("abcdefg"), 5)
	c := Bytes64([]byte("abcdefghi"), 5)
	if a == b || a == c || b == c {
		t.Fatal("length changes did not alter hash")
	}
	if Bytes64(nil, 5) != Bytes64([]byte{}, 5) {
		t.Fatal("nil and empty should hash equal")
	}
}

func TestPair64DistinguishesValues(t *testing.T) {
	k := packet.FlowKey{SrcIP: 1}
	if Pair64(k, 1, 3) == Pair64(k, 2, 3) {
		t.Fatal("pair hash ignored value")
	}
}

func TestCRC32CMatchesKnownProperties(t *testing.T) {
	k := packet.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	if CRC32C(k) != CRC32C(k) {
		t.Fatal("CRC not deterministic")
	}
	if CRC32C(k) == CRC32C(k.Reverse()) {
		t.Fatal("CRC should differ for reversed key")
	}
}

// TestCRC32CMatchesStdlib: the hand-rolled table loop must stay
// bit-identical to hash/crc32's Castagnoli checksum — shard routing by
// this value is baked into snapshots and WAL grouping, so a divergence
// would silently corrupt recovery.
func TestCRC32CMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10_000; i++ {
		k := randKey(rng)
		b := k.Bytes()
		want := crc32.Checksum(b[:], castagnoli)
		if got := CRC32C(k); got != want {
			t.Fatalf("CRC32C(%+v) = %#x, stdlib %#x", k, got, want)
		}
	}
}

// TestShardZeroAlloc pins per-record shard routing at zero allocations —
// it runs once per ingested AFR on the controller's pooled hot path.
func TestShardZeroAlloc(t *testing.T) {
	k := packet.FlowKey{SrcIP: 0x0A0B0C0D, DstIP: 0x01020304, SrcPort: 5555, DstPort: 443, Proto: 6}
	var sink int
	if allocs := testing.AllocsPerRun(1000, func() { sink += Shard(k, 8) }); allocs != 0 {
		t.Fatalf("Shard allocated %v per call, want 0 (sink %d)", allocs, sink)
	}
}

func TestShardRangeAndBalance(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7, 8, 16} {
		counts := make([]int, n)
		for i := 0; i < 4096; i++ {
			k := packet.FlowKey{SrcIP: uint32(Mix64(uint64(i))), DstIP: uint32(i), DstPort: 443, Proto: 6}
			s := Shard(k, n)
			if s < 0 || s >= n {
				t.Fatalf("Shard(%d shards) = %d out of range", n, s)
			}
			counts[s]++
			if Shard(k, n) != s {
				t.Fatal("Shard not deterministic")
			}
		}
		// Every shard must receive a reasonable slice of a uniform key
		// population: no shard under 1/4 of the fair share.
		for s, c := range counts {
			if c < 4096/n/4 {
				t.Fatalf("shard %d/%d starved: %d of 4096 keys", s, n, c)
			}
		}
	}
}

func BenchmarkKey64(b *testing.B) {
	k := packet.FlowKey{SrcIP: 0x0A0B0C0D, DstIP: 0x01020304, SrcPort: 5555, DstPort: 443, Proto: 6}
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Key64(k, uint64(i))
	}
	_ = sink
}
