// Package hashing provides the seeded hash family used by every sketch and
// hash table in the repository. Programmable-switch telemetry relies on
// cheap per-row independent hashes (Tofino exposes CRC units with
// configurable polynomials); this package reproduces that with a
// xxHash-style 64-bit mixer specialized to the 13-byte flow key, plus
// CRC-32C for controller-side tables.
package hashing

import (
	"encoding/binary"
	"hash/crc32"

	"omniwindow/internal/packet"
)

const (
	prime1 = 0x9E3779B185EBCA87
	prime2 = 0xC2B2AE3D27D4EB4F
	prime3 = 0x165667B19E3779F9
	prime4 = 0x85EBCA77C2B2AE63
	prime5 = 0x27D4EB2F165667C5
)

func rotl(x uint64, r uint) uint64 { return x<<r | x>>(64-r) }

// Mix64 is the finalization avalanche of the mixer; exported because the
// trace generator reuses it to derive reproducible pseudo-random streams.
func Mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

// Key64 hashes a flow key with the given seed into 64 bits. Different seeds
// yield (empirically) independent hash functions, standing in for the
// per-row CRC polynomials of the switch hash units.
func Key64(k packet.FlowKey, seed uint64) uint64 {
	b := k.Bytes()
	// Treat the 13 bytes as one 8-byte lane, one 4-byte lane and one byte.
	lane0 := binary.LittleEndian.Uint64(b[0:8])
	lane1 := uint64(binary.LittleEndian.Uint32(b[8:12]))
	lane2 := uint64(b[12])

	h := seed + prime5 + packet.KeyBytes
	h ^= rotl(lane0*prime2, 31) * prime1
	h = rotl(h, 27)*prime1 + prime4
	h ^= lane1 * prime1
	h = rotl(h, 23)*prime2 + prime3
	h ^= lane2 * prime5
	h = rotl(h, 11) * prime1
	return Mix64(h)
}

// Key32 hashes a flow key into 32 bits.
func Key32(k packet.FlowKey, seed uint64) uint32 {
	return uint32(Key64(k, seed))
}

// Index hashes a flow key into [0, buckets). buckets must be > 0.
func Index(k packet.FlowKey, seed uint64, buckets int) int {
	// Multiply-shift range reduction avoids modulo bias and is cheaper
	// than %, matching the fixed-width range tables switches use.
	return int(uint64(uint32(Key64(k, seed))) * uint64(buckets) >> 32)
}

// Bytes64 hashes an arbitrary byte slice with the given seed. It is used
// for values that are not flow keys (e.g. distinct-count elements that
// combine a key with an attribute).
func Bytes64(b []byte, seed uint64) uint64 {
	h := seed + prime5 + uint64(len(b))
	for len(b) >= 8 {
		h ^= rotl(binary.LittleEndian.Uint64(b)*prime2, 31) * prime1
		h = rotl(h, 27)*prime1 + prime4
		b = b[8:]
	}
	for _, c := range b {
		h ^= uint64(c) * prime5
		h = rotl(h, 11) * prime1
	}
	return Mix64(h)
}

// Pair64 hashes an ordered (key, value) pair, used by distinction
// statistics (count of distinct values per key).
func Pair64(k packet.FlowKey, v uint64, seed uint64) uint64 {
	h := Key64(k, seed)
	h ^= rotl(v*prime2, 31) * prime1
	return Mix64(h)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CRC32C computes the Castagnoli CRC of the flow key — the same
// polynomial the paper's DPDK controller feeds to SSE4.2 crc instructions
// for its rte_hash table. The table-driven loop is inlined here rather
// than calling crc32.Checksum: the stdlib's arch dispatch goes through a
// function pointer that defeats escape analysis, heap-allocating the
// 13-byte key on every call, and per-record shard routing sits on the
// zero-allocation ingest path. The result is bit-identical to
// crc32.Checksum(b, castagnoli) (asserted by the package tests).
func CRC32C(k packet.FlowKey) uint32 {
	b := k.Bytes()
	crc := ^uint32(0)
	for _, c := range b {
		crc = castagnoli[byte(crc)^c] ^ crc>>8
	}
	return ^crc
}

// Shard maps a flow key into [0, n) shards via CRC-32C with multiply-shift
// range reduction — the controller's table partitioner. It uses the same
// hardware-accelerated CRC as the key-value table itself (rte_hash in the
// paper's DPDK controller), and is independent of the sketch family's
// seeded mixers so sharding cannot correlate with sketch bucketing.
func Shard(k packet.FlowKey, n int) int {
	return int(uint64(CRC32C(k)) * uint64(n) >> 32)
}

// Family is a set of n independent hash functions sharing a base seed,
// one per sketch row.
type Family struct {
	seeds []uint64
}

// NewFamily derives n independent seeds from base.
func NewFamily(n int, base uint64) *Family {
	f := &Family{seeds: make([]uint64, n)}
	s := base
	for i := range f.seeds {
		s = Mix64(s + prime1)
		f.seeds[i] = s
	}
	return f
}

// Size returns the number of functions in the family.
func (f *Family) Size() int { return len(f.seeds) }

// Seed returns the i-th seed, for callers that hash non-key data.
func (f *Family) Seed(i int) uint64 { return f.seeds[i] }

// Index applies the i-th function to k over [0, buckets).
func (f *Family) Index(i int, k packet.FlowKey, buckets int) int {
	return Index(k, f.seeds[i], buckets)
}

// Hash64 applies the i-th function to k.
func (f *Family) Hash64(i int, k packet.FlowKey) uint64 {
	return Key64(k, f.seeds[i])
}
