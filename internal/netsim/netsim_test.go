package netsim

import (
	"testing"

	"omniwindow/internal/packet"
	"omniwindow/internal/window"
)

func mkPkts(n int, gap int64) []packet.Packet {
	out := make([]packet.Packet, n)
	for i := range out {
		out[i] = packet.Packet{
			Key:  packet.FlowKey{SrcIP: 1, DstIP: 2, Proto: packet.ProtoUDP},
			Seq:  uint32(i),
			Time: int64(i) * gap,
		}
	}
	return out
}

func TestPathDeliversToAllHops(t *testing.T) {
	var seen0, seen1 int
	p := Path{
		Hops: []Hop{
			{Process: func(*packet.Packet, int64) { seen0++ }},
			{Process: func(*packet.Packet, int64) { seen1++ }},
		},
		LinkDelay: []int64{100},
	}
	if d := p.Run(mkPkts(10, 1000)); d != 0 {
		t.Fatalf("dropped = %d", d)
	}
	if seen0 != 10 || seen1 != 10 {
		t.Fatalf("hops saw %d/%d", seen0, seen1)
	}
}

func TestLinkDelayAndOffsetsAffectLocalTime(t *testing.T) {
	var t0, t1 int64
	p := Path{
		Hops: []Hop{
			{Offset: -50, Process: func(_ *packet.Packet, lt int64) { t0 = lt }},
			{Offset: 70, Process: func(_ *packet.Packet, lt int64) { t1 = lt }},
		},
		LinkDelay: []int64{1000},
	}
	p.Run(mkPkts(1, 0))
	if t0 != -50 {
		t.Fatalf("hop0 local time = %d", t0)
	}
	if t1 != 0+1000+70 {
		t.Fatalf("hop1 local time = %d", t1)
	}
}

func TestLossStopsPropagation(t *testing.T) {
	var seen1 int
	p := Path{
		Hops: []Hop{
			{Process: func(*packet.Packet, int64) {}},
			{Process: func(*packet.Packet, int64) { seen1++ }},
		},
		LinkDelay: []int64{0},
		Loss:      func(pk *packet.Packet, hop int) bool { return pk.Seq%2 == 0 },
	}
	d := p.Run(mkPkts(10, 1))
	if d != 5 || seen1 != 5 {
		t.Fatalf("dropped=%d delivered=%d", d, seen1)
	}
}

func TestFaultDropCounts(t *testing.T) {
	var seen1 int
	p := Path{
		Hops: []Hop{
			{Process: func(*packet.Packet, int64) {}},
			{Process: func(*packet.Packet, int64) { seen1++ }},
		},
		Fault: func(pk *packet.Packet, hop int) LinkAction {
			return LinkAction{Drop: pk.Seq%2 == 0}
		},
	}
	if d := p.Run(mkPkts(10, 1)); d != 5 || seen1 != 5 {
		t.Fatalf("dropped=%d delivered=%d", d, seen1)
	}
}

func TestFaultDuplicatesTraverseRemainingHops(t *testing.T) {
	var seen0, seen1 int
	p := Path{
		Hops: []Hop{
			{Process: func(*packet.Packet, int64) { seen0++ }},
			{Process: func(*packet.Packet, int64) { seen1++ }},
		},
		Fault: func(_ *packet.Packet, hop int) LinkAction {
			return LinkAction{Duplicates: 2}
		},
	}
	if d := p.Run(mkPkts(5, 1)); d != 0 {
		t.Fatalf("dropped = %d", d)
	}
	// Duplication happens after hop 0, so hop 0 sees originals only and
	// hop 1 sees the original plus two copies of each packet.
	if seen0 != 5 || seen1 != 15 {
		t.Fatalf("hops saw %d/%d, want 5/15", seen0, seen1)
	}
}

func TestFaultExtraDelayShiftsLocalTime(t *testing.T) {
	var times []int64
	p := Path{
		Hops: []Hop{
			{Process: func(*packet.Packet, int64) {}},
			{Process: func(_ *packet.Packet, lt int64) { times = append(times, lt) }},
		},
		LinkDelay: []int64{100},
		Fault: func(_ *packet.Packet, hop int) LinkAction {
			return LinkAction{Duplicates: 1, ExtraDelay: 1000}
		},
	}
	p.Run(mkPkts(1, 0))
	if len(times) != 2 {
		t.Fatalf("hop 1 saw %d packets", len(times))
	}
	for i, lt := range times {
		if lt != 1100 {
			t.Fatalf("arrival %d at local time %d, want 1100", i, lt)
		}
	}
}

func TestFaultDroppedDuplicateCounts(t *testing.T) {
	// A duplicate injected on link 0 and dropped on link 1 must count.
	calls := 0
	p := Path{
		Hops: []Hop{
			{Process: func(*packet.Packet, int64) {}},
			{Process: func(*packet.Packet, int64) {}},
			{Process: func(*packet.Packet, int64) {}},
		},
		Fault: func(_ *packet.Packet, hop int) LinkAction {
			if hop == 0 {
				return LinkAction{Duplicates: 1}
			}
			calls++
			return LinkAction{Drop: calls == 1} // drop only the first crossing of link 1
		},
	}
	if d := p.Run(mkPkts(1, 0)); d != 1 {
		t.Fatalf("dropped = %d, want 1", d)
	}
}

func TestBernoulliLossDeterministic(t *testing.T) {
	a := BernoulliLoss(0, 0.5, 42)
	b := BernoulliLoss(0, 0.5, 42)
	pk := &packet.Packet{}
	for i := 0; i < 100; i++ {
		if a(pk, 0) != b(pk, 0) {
			t.Fatal("loss not deterministic")
		}
	}
	if a(pk, 1) {
		t.Fatal("loss applied to wrong link")
	}
}

func TestSymmetricOffsets(t *testing.T) {
	a, b := SymmetricOffsets(128000)
	if b-a != 128000 {
		t.Fatalf("deviation = %d", b-a)
	}
}

// TestStampPropagationAcrossHops wires two window managers onto a path and
// verifies the §5 guarantee: with OmniWindow stamping, both switches
// monitor each packet in the same sub-window even under clock deviation
// and link delay; with local clocks they disagree near boundaries.
func TestStampPropagationAcrossHops(t *testing.T) {
	const subWin = int64(100_000) // 100 us sub-windows
	pkts := mkPkts(2000, 997)     // ~2 ms of traffic

	type assignment map[uint32]uint64 // seq -> sub-window

	run := func(stamped bool, deviation int64) (assignment, assignment) {
		m0 := window.NewManager(window.TimeoutSignal{Interval: subWin}, window.NewRegions(2, 4))
		m1 := window.NewManager(window.TimeoutSignal{Interval: subWin}, window.NewRegions(2, 4))
		a0, a1 := assignment{}, assignment{}
		off0, off1 := SymmetricOffsets(deviation)
		p := Path{
			Hops: []Hop{
				{Offset: off0, Process: func(pk *packet.Packet, lt int64) {
					r := m0.OnPacket(pk, lt)
					if !stamped {
						pk.OW.HasSubWindow = false // strip the stamp: local-clock mode
						r.Monitor = uint64(lt / subWin)
					}
					a0[pk.Seq] = r.Monitor
				}},
				{Offset: off1, Process: func(pk *packet.Packet, lt int64) {
					if !stamped {
						a1[pk.Seq] = uint64(lt / subWin)
						return
					}
					r := m1.OnPacket(pk, lt)
					a1[pk.Seq] = r.Monitor
				}},
			},
			LinkDelay: []int64{5000},
		}
		p.Run(pkts)
		return a0, a1
	}

	s0, s1 := run(true, 64000)
	for seq, w0 := range s0 {
		if s1[seq] != w0 {
			t.Fatalf("stamped mode disagreed on seq %d: %d vs %d", seq, w0, s1[seq])
		}
	}

	l0, l1 := run(false, 64000)
	disagree := 0
	for seq, w0 := range l0 {
		if l1[seq] != w0 {
			disagree++
		}
	}
	if disagree == 0 {
		t.Fatal("local clocks with 64 us deviation should disagree on some packets")
	}
}

// A hop's OffsetFunc is evaluated per traversal on top of the static
// Offset, so a drifting clock skews later packets more than earlier ones.
func TestHopOffsetFunc(t *testing.T) {
	var drift int64
	var seen []int64
	p := Path{Hops: []Hop{{
		Offset:     100,
		OffsetFunc: func() int64 { return drift },
		Process:    func(_ *packet.Packet, lt int64) { seen = append(seen, lt) },
	}}}

	pkts := []packet.Packet{{Time: 1000}, {Time: 1000}}
	p.Run(pkts[:1])
	drift = -400
	p.Run(pkts[1:])

	if len(seen) != 2 || seen[0] != 1100 || seen[1] != 700 {
		t.Fatalf("local times = %v, want [1100 700]", seen)
	}
}
