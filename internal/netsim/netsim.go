// Package netsim simulates multi-switch packet paths for the network-wide
// experiments: per-switch clock offsets (modeling PTP deviation), per-link
// delays, and packet loss injection. Exp#9 uses it to compare OmniWindow's
// consistency model against local-clock windowing with two LossRadar
// meters on adjacent switches.
package netsim

import (
	"math/rand"

	"omniwindow/internal/packet"
)

// Hop is one switch on a path.
type Hop struct {
	// Offset is the hop's clock deviation from true time in virtual ns
	// (what PTP leaves uncorrected).
	Offset int64
	// OffsetFunc, when non-nil, is evaluated per traversal and added on
	// top of Offset. A slow-oscillator switch whose skew grows over time
	// (faults.SwitchSchedule.ClockDriftPerSub) plugs in here.
	OffsetFunc func() int64
	// Process handles the packet at this hop with the hop's local time.
	Process func(p *packet.Packet, localTime int64)
}

// localOffset is the hop's effective clock deviation for one traversal.
func (h *Hop) localOffset() int64 {
	off := h.Offset
	if h.OffsetFunc != nil {
		off += h.OffsetFunc()
	}
	return off
}

// LinkAction is what a fault layer decides for one packet crossing one
// link: drop it, inject extra copies, and/or add latency. The zero value
// is a clean traversal.
type LinkAction struct {
	Drop bool
	// Duplicates is the number of extra copies injected after the
	// original (each copy traverses the remaining hops independently).
	Duplicates int
	// ExtraDelay is additional link latency in virtual ns.
	ExtraDelay int64
}

// Path is a linear sequence of hops joined by links.
type Path struct {
	Hops []Hop
	// LinkDelay[i] is the latency of the link after hop i; its length
	// must be len(Hops)-1 (or nil for zero delays).
	LinkDelay []int64
	// Loss, when non-nil, decides whether the link after hop `hop` drops
	// the packet.
	Loss func(p *packet.Packet, hop int) bool
	// Fault, when non-nil, is consulted after Loss for each link crossing
	// and may drop, duplicate or delay the packet (see faults.Injector's
	// LinkFault adapter for the seeded implementation).
	Fault func(p *packet.Packet, hop int) LinkAction
}

// Run sends every trace packet along the path in order. The same packet
// object traverses all hops, so header mutations (OmniWindow stamps)
// propagate exactly as on the wire. It returns the number of packets
// dropped by link loss or fault injection (duplicated copies that are
// later dropped count too).
func (path Path) Run(pkts []packet.Packet) (dropped int) {
	for i := range pkts {
		p := pkts[i] // copy: hops mutate the header
		dropped += path.runFrom(&p, 0, p.Time)
	}
	return dropped
}

// runFrom traverses the path from startHop onward, recursing for injected
// duplicates so each copy experiences the remaining hops independently.
func (path Path) runFrom(p *packet.Packet, startHop int, t int64) (dropped int) {
	for h := startHop; h < len(path.Hops); h++ {
		path.Hops[h].Process(p, t+path.Hops[h].localOffset())
		if h == len(path.Hops)-1 {
			break
		}
		if path.Loss != nil && path.Loss(p, h) {
			return dropped + 1
		}
		var act LinkAction
		if path.Fault != nil {
			act = path.Fault(p, h)
		}
		linkDelay := int64(0)
		if path.LinkDelay != nil {
			linkDelay = path.LinkDelay[h]
		}
		for d := 0; d < act.Duplicates; d++ {
			dup := p.Clone()
			dropped += path.runFrom(dup, h+1, t+linkDelay+act.ExtraDelay)
		}
		if act.Drop {
			return dropped + 1
		}
		t += linkDelay + act.ExtraDelay
	}
	return dropped
}

// BernoulliLoss drops packets on the given link index with probability p,
// deterministically from seed.
func BernoulliLoss(link int, p float64, seed int64) func(*packet.Packet, int) bool {
	rng := rand.New(rand.NewSource(seed))
	return func(_ *packet.Packet, hop int) bool {
		if hop != link {
			return false
		}
		return rng.Float64() < p
	}
}

// SymmetricOffsets returns two-hop clock offsets +-deviation/2, the
// worst-case PTP disagreement of `deviation` between adjacent switches.
func SymmetricOffsets(deviation int64) (int64, int64) {
	return -deviation / 2, deviation - deviation/2
}
