package obs

import (
	"sync"
	"time"
)

// Stage is one step of a sub-window's life, or a deployment-level event
// that reshapes window coverage. The happy path of one sub-window reads
// announced → collected → finished → window emitted; the unhappy paths
// interleave recovered/shed/failover/reboot events.
type Stage uint8

const (
	// StageAnnounced: the trigger packet announced a terminated
	// sub-window to the controller. Value = announced key count.
	StageAnnounced Stage = iota
	// StageCollected: the C&R round drained the sub-window's region.
	// Value = AFR records collected; Shard = the memory region index.
	StageCollected
	// StageRecovered: the NACK/retransmit loop repaired losses.
	// Value = recovery rounds run.
	StageRecovered
	// StageShed: admission control dropped records under overload.
	// Value = records shed.
	StageShed
	// StageFinished: the controller ran O2–O5 window assembly for the
	// sub-window. Value = total assembly CPU time in nanoseconds;
	// Shard = shard count that ran.
	StageFinished
	// StageWindowEmitted: a complete window ended at this sub-window.
	// Value = the window's first sub-window (Start).
	StageWindowEmitted
	// StageCheckpoint: controller state was checkpointed at this
	// boundary. Value = checkpoint duration in nanoseconds.
	StageCheckpoint
	// StageFailover: the hot standby promoted mid-collection.
	StageFailover
	// StageReboot: the switch power-cycled, wiping its registers.
	// Value = oldest uncollected sub-window destroyed by the wipe.
	StageReboot
	// StageEpochResync: the switch adopted a fabric epoch (beacon or
	// traffic-borne). Value = the adopted epoch.
	StageEpochResync
	// StageQuarantine: the fabric quarantined the switch. Value = the
	// sub-window at which quarantine lifts.
	StageQuarantine
	// StageReadmit: quarantine lifted; the switch was resynced and
	// readmitted.
	StageReadmit
	// StageRDMAFallback: RDMA-path records rerouted to the packet C&R
	// path mid-sub-window (QP down or replay budget exhausted).
	// Value = records handed off.
	StageRDMAFallback
	// StageQPRecovered: the RDMA queue pair recovered from Error at this
	// boundary (AddressMAT rebuilt, replay window re-armed).
	StageQPRecovered
	// StageDurabilityDegraded: the deployment's durability mode flipped
	// at this boundary. Value = 1 entering degraded (WAL/checkpoint
	// writes suspended and counted as gaps), 0 on heal (fresh checkpoint
	// + new WAL generation).
	StageDurabilityDegraded
	// StageFenced: a partitioned former primary's durable writes were
	// rejected under a stale fencing term and it self-demoted.
	// Value = fenced write attempts observed at this boundary.
	StageFenced
)

var stageNames = [...]string{
	StageAnnounced:          "announced",
	StageCollected:          "collected",
	StageRecovered:          "recovered",
	StageShed:               "shed",
	StageFinished:           "finished",
	StageWindowEmitted:      "window_emitted",
	StageCheckpoint:         "checkpoint",
	StageFailover:           "failover",
	StageReboot:             "reboot",
	StageEpochResync:        "epoch_resync",
	StageQuarantine:         "quarantine",
	StageReadmit:            "readmit",
	StageRDMAFallback:       "rdma_fallback",
	StageQPRecovered:        "qp_recovered",
	StageDurabilityDegraded: "durability_degraded",
	StageFenced:             "fenced",
}

// String names the stage as it appears in JSON dumps and owtop.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// MarshalJSON renders the stage as its string name.
func (s Stage) MarshalJSON() ([]byte, error) {
	name := s.String()
	b := make([]byte, 0, len(name)+2)
	b = append(b, '"')
	b = append(b, name...)
	return append(b, '"'), nil
}

// Event is one trace-ring entry.
type Event struct {
	// Seq is the event's position in the recording order (monotonic
	// across the ring's whole life, not just the retained tail).
	Seq uint64 `json:"seq"`
	// At is the wall-clock timestamp in Unix nanoseconds.
	At int64 `json:"at_unix_ns"`
	// Stage is the lifecycle step.
	Stage Stage `json:"stage"`
	// SubWindow is the sub-window the event concerns.
	SubWindow uint64 `json:"sub_window"`
	// Shard attributes the event to a controller shard count, memory
	// region, or fabric switch index, depending on the stage; -1 when
	// not applicable.
	Shard int `json:"shard"`
	// Value is the stage-specific magnitude (see the Stage constants).
	Value int64 `json:"value"`
}

// Ring is a fixed-capacity window-lifecycle trace: Record overwrites the
// oldest event once full, so the ring always holds the most recent tail
// at a bounded, pre-allocated memory cost. Record never allocates; a nil
// *Ring ignores records and snapshots empty.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever recorded
}

// NewRing builds a ring retaining the last capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record appends one event, stamping its sequence number and wall-clock
// time. Safe for concurrent callers; never allocates.
func (r *Ring) Record(stage Stage, subWindow uint64, shard int, value int64) {
	if r == nil {
		return
	}
	now := time.Now().UnixNano()
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = Event{
		Seq: r.next, At: now, Stage: stage, SubWindow: subWindow, Shard: shard, Value: value,
	}
	r.next++
	r.mu.Unlock()
}

// Total reports how many events were ever recorded (retained or not).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Snapshot copies the retained events, oldest first.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	cap64 := uint64(len(r.buf))
	start := uint64(0)
	if n > cap64 {
		start = n - cap64
	}
	out := make([]Event, 0, n-start)
	for s := start; s < n; s++ {
		out = append(out, r.buf[s%cap64])
	}
	return out
}
