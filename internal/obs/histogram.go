package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency histogram: observations land in the
// first bucket whose upper bound (in seconds) is >= the value, plus an
// implicit +Inf bucket. Buckets are atomic, so Observe is safe for
// concurrent callers and never allocates; quantiles are estimated by
// linear interpolation inside the owning bucket, so their relative error
// is bounded by the bucket ratio (2x for DurationBuckets). A nil
// *Histogram ignores observations and reads zeros.
type Histogram struct {
	name   string
	help   string
	bounds []float64 // sorted upper bounds, seconds
	counts []atomic.Int64
	count  atomic.Int64
	sumNs  atomic.Int64
}

// DurationBuckets is the default latency bucket layout: powers of two
// from 1µs to ~8.6s, 24 buckets (+Inf implicit). It spans everything the
// pipeline times — sub-microsecond shard ops round up into the first
// bucket, and a collect-and-reset round that blows past the sub-window
// budget still lands on the scale.
func DurationBuckets() []float64 {
	b := make([]float64, 24)
	v := 1e-6
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

func newHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets()
	} else {
		bounds = append([]float64(nil), bounds...)
		sort.Float64s(bounds)
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.observeSeconds(d.Seconds(), int64(d))
}

// ObserveSeconds records one observation given in seconds.
func (h *Histogram) ObserveSeconds(s float64) {
	if h == nil {
		return
	}
	h.observeSeconds(s, int64(s*1e9))
}

func (h *Histogram) observeSeconds(s float64, ns int64) {
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// Count reads the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNs.Load())
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observations by
// linear interpolation within the bucket holding the target rank. With no
// observations it returns 0; ranks in the +Inf bucket clamp to the
// highest finite bound.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	snap := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		snap[i] = h.counts[i].Load()
		total += snap[i]
	}
	return time.Duration(QuantileFromBuckets(h.bounds, snap, total, q) * 1e9)
}

// QuantileFromBuckets estimates a quantile in seconds from cumulative-free
// bucket counts (counts[i] observations in (bounds[i-1], bounds[i]];
// counts[len(bounds)] is the +Inf bucket). It is the shared estimator
// between the live histogram and scrape-side consumers (owtop re-derives
// quantiles from Prometheus bucket lines with the same math).
func QuantileFromBuckets(bounds []float64, counts []int64, total int64, q float64) float64 {
	if total <= 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: no upper bound to interpolate toward.
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return bounds[len(bounds)-1]
}
