package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string // full name including embedded labels
	value  float64
	labels map[string]string
}

// parsePrometheus is a strict text-format (0.0.4) consumer: it validates
// the HELP/TYPE header discipline (exactly one per family, before any
// sample of it) and parses every sample line back into structured form —
// the round-trip half of the exposition tests.
func parsePrometheus(t *testing.T, text string) (map[string]float64, map[string]string, []promSample) {
	t.Helper()
	values := make(map[string]float64)
	types := make(map[string]string)
	helped := make(map[string]bool)
	var samples []promSample
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if helped[parts[0]] {
				t.Fatalf("family %q has two HELP headers", parts[0])
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := types[parts[0]]; dup {
				t.Fatalf("family %q has two TYPE headers", parts[0])
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		fam := name
		labels := map[string]string{}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			fam = name[:i]
			inner := strings.TrimSuffix(name[i+1:], "}")
			for _, pair := range strings.Split(inner, ",") {
				kv := strings.SplitN(pair, "=", 2)
				if len(kv) != 2 {
					t.Fatalf("malformed label pair %q in %q", pair, line)
				}
				unq, err := strconv.Unquote(kv[1])
				if err != nil {
					t.Fatalf("label value not quoted in %q: %v", line, err)
				}
				labels[kv[0]] = unq
			}
		}
		baseFam := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(fam, "_bucket"), "_sum"), "_count")
		if _, ok := types[fam]; !ok {
			if _, ok := types[baseFam]; !ok {
				t.Fatalf("sample %q has no TYPE header", line)
			}
		}
		values[name] = v
		samples = append(samples, promSample{name: name, value: v, labels: labels})
	}
	return values, types, samples
}

// TestPrometheusRoundTrip builds a registry with every metric kind,
// renders it, parses the text back, and checks the parsed numbers equal
// the live handles — the exposition is consumed and validated, not just
// eyeballed.
func TestPrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ow_afrs_total", "AFR records ingested")
	c.Add(12345)
	g := reg.Gauge("ow_queue_depth", "ingest queue depth")
	g.Set(77)
	reg.CounterFunc("ow_drops_total", "decode failures", func() int64 { return 9 })
	reg.GaugeFunc("ow_table_size", "flows resident", func() int64 { return 4096 })
	h := reg.Histogram("ow_collect_seconds", "C&R latency", []float64{0.001, 0.01, 0.1, 1})
	h.ObserveSeconds(0.0005) // bucket le=0.001
	h.ObserveSeconds(0.005)  // bucket le=0.01
	h.ObserveSeconds(0.05)   // bucket le=0.1
	h.ObserveSeconds(0.05)
	h.ObserveSeconds(5) // +Inf
	for i := 0; i < 3; i++ {
		reg.Counter(fmt.Sprintf("ow_reboots_total{switch=%q}", fmt.Sprint(i)), "per-switch reboots").Add(int64(i))
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	values, types, samples := parsePrometheus(t, sb.String())

	if values["ow_afrs_total"] != 12345 {
		t.Fatalf("counter round-trip: %v", values["ow_afrs_total"])
	}
	if types["ow_afrs_total"] != "counter" {
		t.Fatalf("counter TYPE: %q", types["ow_afrs_total"])
	}
	if values["ow_queue_depth"] != 77 || types["ow_queue_depth"] != "gauge" {
		t.Fatal("gauge round-trip failed")
	}
	if values["ow_drops_total"] != 9 || values["ow_table_size"] != 4096 {
		t.Fatal("func metric round-trip failed")
	}
	if types["ow_collect_seconds"] != "histogram" {
		t.Fatalf("histogram TYPE: %q", types["ow_collect_seconds"])
	}
	// Cumulative buckets: 1, 2, 4, 4, and +Inf covers all 5.
	wantBuckets := map[string]float64{
		"0.001": 1, "0.01": 2, "0.1": 4, "1": 4, "+Inf": 5,
	}
	seen := 0
	for _, s := range samples {
		if !strings.HasPrefix(s.name, "ow_collect_seconds_bucket") {
			continue
		}
		le := s.labels["le"]
		want, ok := wantBuckets[le]
		if !ok {
			t.Fatalf("unexpected bucket le=%q", le)
		}
		if s.value != want {
			t.Fatalf("bucket le=%q: got %v, want %v", le, s.value, want)
		}
		seen++
	}
	if seen != len(wantBuckets) {
		t.Fatalf("saw %d buckets, want %d", seen, len(wantBuckets))
	}
	if values["ow_collect_seconds_count"] != 5 {
		t.Fatalf("histogram count: %v", values["ow_collect_seconds_count"])
	}
	sum := values["ow_collect_seconds_sum"]
	if sum < 5.1 || sum > 5.2 {
		t.Fatalf("histogram sum: %v", sum)
	}
	// Labeled family: three instances, one family, per-instance values.
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("ow_reboots_total{switch=%q}", fmt.Sprint(i))
		if values[name] != float64(i) {
			t.Fatalf("labeled instance %s: %v", name, values[name])
		}
	}
	if types["ow_reboots_total"] != "counter" {
		t.Fatal("labeled family missing TYPE")
	}
}

// TestHTTPEndpoint serves a registry over a real listener and exercises
// /metrics, /debug/windows and the pprof index.
func TestHTTPEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ep_total", "test").Add(3)
	ring := reg.Ring(16)
	ring.Record(StageAnnounced, 7, -1, 100)
	ring.Record(StageCollected, 7, 0, 100)
	ring.Record(StageWindowEmitted, 7, -1, 3)

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			sb.WriteString(sc.Text())
			sb.WriteByte('\n')
		}
		return resp.StatusCode, sb.String()
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	values, _, _ := parsePrometheus(t, body)
	if values["ep_total"] != 3 {
		t.Fatalf("/metrics ep_total: %v", values["ep_total"])
	}

	code, body = get("/debug/windows")
	if code != http.StatusOK {
		t.Fatalf("/debug/windows status %d", code)
	}
	var dump struct {
		Total  uint64 `json:"total_events"`
		Events []struct {
			Stage     string `json:"stage"`
			SubWindow uint64 `json:"sub_window"`
			Value     int64  `json:"value"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/debug/windows not JSON: %v\n%s", err, body)
	}
	if dump.Total != 3 || len(dump.Events) != 3 {
		t.Fatalf("trace dump: total %d, %d events", dump.Total, len(dump.Events))
	}
	if dump.Events[0].Stage != "announced" || dump.Events[2].Stage != "window_emitted" {
		t.Fatalf("stage names: %+v", dump.Events)
	}
	if dump.Events[2].SubWindow != 7 || dump.Events[2].Value != 3 {
		t.Fatalf("event payload: %+v", dump.Events[2])
	}

	// last=N trims to the newest events.
	code, body = get("/debug/windows?last=1")
	if code != http.StatusOK {
		t.Fatal("last=1 failed")
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Events) != 1 || dump.Events[0].Stage != "window_emitted" {
		t.Fatalf("last=1: %+v", dump.Events)
	}

	code, _ = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("pprof index status %d", code)
	}

	if srv.Close() != nil {
		t.Fatal("double close errored")
	}
}

// TestQuantileFromBuckets: the scrape-side estimator (what owtop uses on
// parsed bucket lines) agrees with the live histogram's.
func TestQuantileFromBuckets(t *testing.T) {
	h := newHistogram("x_seconds", "test", nil)
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		live := h.Quantile(q).Seconds()
		scraped := QuantileFromBuckets(h.bounds, counts, total, q)
		// Quantile truncates to whole nanoseconds; allow that much slack.
		if diff := live - scraped; diff < -1e-9 || diff > 1e-9 {
			t.Fatalf("q=%v: live %v != scraped %v", q, live, scraped)
		}
	}
}
