// Package obs is the runtime observability layer: atomic counters and
// gauges, fixed-bucket latency histograms with quantile estimation, a
// structured window-lifecycle trace ring, and an HTTP endpoint exposing
// all of it (Prometheus text format, JSON trace dumps, pprof). It watches
// the telemetry pipeline itself — where collect-and-reset time goes, how
// deep the ingest queue runs, what the recovery path is doing — as
// opposed to internal/metrics, which scores the pipeline's *output*
// against ground truth (precision/recall/ARE, the paper's evaluation).
//
// The package is dependency-free (stdlib only) and built around two
// contracts the hot paths rely on:
//
//   - Nil safety: every method on a nil *Counter, *Gauge, *Histogram,
//     *Ring or *Registry is a no-op (or zero read). Instrumented code
//     holds handles unconditionally and never branches on "is
//     observability on"; a deployment without Config.DebugAddr carries
//     nil handles everywhere.
//   - Zero allocation: neither the disabled (nil) nor the enabled path
//     allocates on Observe/Add/Record. The disabled path is a nil check
//     and nothing else, proven by testing.AllocsPerRun and the CI
//     benchmark-regression gate.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter ignores writes and reads zero.
type Counter struct {
	v    atomic.Int64
	name string
	help string
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to use;
// a nil *Gauge ignores writes and reads zero.
type Gauge struct {
	v    atomic.Int64
	name string
	help string
}

// Set stores the current value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the current value by n (either sign).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reads the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// funcMetric is a scrape-time metric: its value is computed by a callback
// when the registry is exposed, so hot paths that already maintain their
// own atomics (the UDP collector's accounting) are exported without
// double-counting a single write.
type funcMetric struct {
	name    string
	help    string
	typ     string // "counter" or "gauge"
	collect func() int64
}

// Registry holds a deployment's metrics and its lifecycle trace ring, and
// renders them in Prometheus text format. A nil *Registry hands out nil
// handles, so a single code path serves both instrumented and
// uninstrumented deployments.
type Registry struct {
	mu       sync.Mutex
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	funcs    []funcMetric
	byName   map[string]interface{}
	ring     *Ring
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]interface{})}
}

// Counter registers (or fetches, when the exact name is already
// registered) a counter. The name may carry a Prometheus label set, e.g.
// `omniwindow_fabric_reboots_total{switch="2"}`; metrics sharing the
// family (the part before '{') are grouped under one HELP/TYPE header.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if c, ok := m.(*Counter); ok {
			return c
		}
		return nil
	}
	c := &Counter{name: name, help: help}
	r.counters = append(r.counters, c)
	r.byName[name] = c
	return c
}

// Gauge registers (or fetches) a gauge; naming as in Counter.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if g, ok := m.(*Gauge); ok {
			return g
		}
		return nil
	}
	g := &Gauge{name: name, help: help}
	r.gauges = append(r.gauges, g)
	r.byName[name] = g
	return g
}

// Histogram registers (or fetches) a histogram over the given bucket
// upper bounds in seconds (nil means DurationBuckets); naming as in
// Counter.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if h, ok := m.(*Histogram); ok {
			return h
		}
		return nil
	}
	h := newHistogram(name, help, bounds)
	r.hists = append(r.hists, h)
	r.byName[name] = h
	return h
}

// CounterFunc registers a scrape-time counter whose value comes from
// collect. Duplicate names are ignored (first registration wins).
func (r *Registry) CounterFunc(name, help string, collect func() int64) {
	r.addFunc(name, help, "counter", collect)
}

// GaugeFunc registers a scrape-time gauge whose value comes from collect.
func (r *Registry) GaugeFunc(name, help string, collect func() int64) {
	r.addFunc(name, help, "gauge", collect)
}

func (r *Registry) addFunc(name, help, typ string, collect func() int64) {
	if r == nil || collect == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		return
	}
	r.funcs = append(r.funcs, funcMetric{name: name, help: help, typ: typ, collect: collect})
	r.byName[name] = collect
}

// Ring returns the registry's window-lifecycle trace ring, creating it
// with the given capacity on first use (capacity <= 0 means 4096; later
// calls reuse the existing ring regardless of capacity).
func (r *Registry) Ring(capacity int) *Ring {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ring == nil {
		if capacity <= 0 {
			capacity = 4096
		}
		r.ring = NewRing(capacity)
	}
	return r.ring
}

// family splits a metric name into its family (HELP/TYPE grouping unit)
// and the label set embedded in the name, if any.
func family(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// sortedByFamily orders names so metrics of one family are contiguous and
// the families themselves are alphabetical — the layout the Prometheus
// text format requires (one HELP/TYPE header per family).
func sortedByFamily(names []string) {
	sort.Slice(names, func(i, j int) bool {
		fi, _ := family(names[i])
		fj, _ := family(names[j])
		if fi != fj {
			return fi < fj
		}
		return names[i] < names[j]
	})
}
