package obs

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestNilHandlesAreSafe: every operation on nil handles (the disabled-
// instrumentation state every uninstrumented deployment runs with) must
// be a no-op, not a crash.
func TestNilHandlesAreSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter read nonzero")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge read nonzero")
	}
	var h *Histogram
	h.Observe(time.Second)
	h.ObserveSeconds(0.5)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram read nonzero")
	}
	var ring *Ring
	ring.Record(StageAnnounced, 1, 0, 1)
	if ring.Total() != 0 || ring.Snapshot() != nil {
		t.Fatal("nil ring recorded something")
	}
	var reg *Registry
	if reg.Counter("x", "") != nil || reg.Gauge("x", "") != nil ||
		reg.Histogram("x", "", nil) != nil || reg.Ring(8) != nil {
		t.Fatal("nil registry handed out non-nil handles")
	}
	reg.CounterFunc("x", "", func() int64 { return 1 })
	if err := reg.WritePrometheus(nil); err != nil {
		t.Fatal(err)
	}
}

// TestDisabledInstrumentationZeroAlloc is the overhead contract: with
// observability disabled (nil handles), the instrumentation calls sitting
// on the hot paths must not allocate at all.
func TestDisabledInstrumentationZeroAlloc(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var ring *Ring
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(7)
		g.Set(42)
		h.Observe(123 * time.Microsecond)
		ring.Record(StageCollected, 9, 1, 64)
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocated %v per run", allocs)
	}
}

// TestEnabledInstrumentationZeroAlloc: the enabled path is also
// allocation-free per operation — the observability layer must not create
// garbage-collection pressure proportional to traffic.
func TestEnabledInstrumentationZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "test")
	g := reg.Gauge("g", "test")
	h := reg.Histogram("h_seconds", "test", nil)
	ring := reg.Ring(64)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(1)
		h.Observe(123 * time.Microsecond)
		ring.Record(StageCollected, 9, 1, 64)
	})
	if allocs != 0 {
		t.Fatalf("enabled instrumentation allocated %v per run", allocs)
	}
}

// TestCounterAndRingUnderRace hammers counters, gauges, histograms and
// the trace ring from many goroutines; run with -race this is the
// concurrency-correctness assertion, and the final counts must reconcile
// exactly.
func TestCounterAndRingUnderRace(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hammer_total", "test")
	h := reg.Histogram("hammer_seconds", "test", nil)
	ring := reg.Ring(128)
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				h.Observe(time.Duration(i*j) * time.Microsecond)
				ring.Record(StageCollected, uint64(j), i, 1)
				if j%100 == 0 {
					_ = ring.Snapshot()
					_ = h.Quantile(0.5)
				}
			}
		}(i)
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter lost updates: %d != %d", got, goroutines*perG)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("histogram lost updates: %d != %d", got, goroutines*perG)
	}
	if got := ring.Total(); got != goroutines*perG {
		t.Fatalf("ring lost updates: %d != %d", got, goroutines*perG)
	}
	snap := ring.Snapshot()
	if len(snap) != 128 {
		t.Fatalf("ring retained %d events, capacity 128", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq != snap[i-1].Seq+1 {
			t.Fatalf("snapshot not in sequence order at %d: %d then %d", i, snap[i-1].Seq, snap[i].Seq)
		}
	}
}

// TestRingWrapsOldestFirst: the ring retains exactly the newest tail.
func TestRingWrapsOldestFirst(t *testing.T) {
	ring := NewRing(4)
	for i := 0; i < 10; i++ {
		ring.Record(StageAnnounced, uint64(i), -1, int64(i))
	}
	snap := ring.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("retained %d, want 4", len(snap))
	}
	for i, e := range snap {
		want := uint64(6 + i)
		if e.Seq != want || e.SubWindow != want {
			t.Fatalf("slot %d: got seq %d sub-window %d, want %d", i, e.Seq, e.SubWindow, want)
		}
		if e.At == 0 {
			t.Fatal("event missing timestamp")
		}
	}
	if ring.Total() != 10 {
		t.Fatalf("total %d, want 10", ring.Total())
	}
}

// TestHistogramQuantileAccuracy checks the interpolated estimator against
// a reference sort: for every tested quantile the estimate must land
// within the bucket that truly contains it — i.e. within one bucket ratio
// (2x) of the exact order statistic.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := newHistogram("q_seconds", "test", nil)
	const n = 20000
	vals := make([]float64, n)
	for i := range vals {
		// Log-uniform over [10µs, 1s] — the C&R latency shape.
		v := math.Pow(10, -5+3*rng.Float64())
		vals[i] = v
		h.ObserveSeconds(v)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999} {
		idx := int(q*float64(n)) - 1
		if idx < 0 {
			idx = 0
		}
		truth := vals[idx]
		est := h.Quantile(q).Seconds()
		if est < truth/2 || est > truth*2 {
			t.Fatalf("q=%v: estimate %v outside bucket of truth %v", q, est, truth)
		}
	}
	if h.Count() != n {
		t.Fatalf("count %d, want %d", h.Count(), n)
	}
}

// TestHistogramQuantileEdgeCases: empty histograms and the +Inf bucket.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := newHistogram("e_seconds", "test", []float64{0.001, 0.01, 0.1})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile nonzero")
	}
	h.ObserveSeconds(5.0) // beyond every bound: +Inf bucket
	if got := h.Quantile(0.99); got != 100*time.Millisecond {
		t.Fatalf("+Inf bucket quantile %v, want clamp to highest bound 100ms", got)
	}
	h2 := newHistogram("e2_seconds", "test", []float64{0.001, 0.01, 0.1})
	for i := 0; i < 100; i++ {
		h2.ObserveSeconds(0.005)
	}
	q := h2.Quantile(0.5).Seconds()
	if q < 0.001 || q > 0.01 {
		t.Fatalf("median %v outside owning bucket (0.001, 0.01]", q)
	}
}

// TestRegistryGetOrCreate: registering the same name twice returns the
// same handle, and a type clash yields nil rather than corrupting the
// registry.
func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("dup_total", "x")
	b := reg.Counter("dup_total", "x")
	if a != b {
		t.Fatal("same name returned different counters")
	}
	if reg.Gauge("dup_total", "x") != nil {
		t.Fatal("type clash did not return nil")
	}
	if reg.Ring(16) != reg.Ring(32) {
		t.Fatal("ring not shared")
	}
}

// TestLabeledFamilies: per-instance metrics registered with embedded
// label sets are one family.
func TestLabeledFamilies(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < 3; i++ {
		reg.Counter(fmt.Sprintf("fam_total{switch=%q}", fmt.Sprint(i)), "per-switch").Add(int64(i + 1))
	}
	fam, labels := family(`fam_total{switch="2"}`)
	if fam != "fam_total" || labels != `switch="2"` {
		t.Fatalf("family split: %q %q", fam, labels)
	}
}
