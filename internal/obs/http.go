package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): counters, gauges, scrape-time func
// metrics, and histograms with cumulative le-buckets. Families (the name
// before any embedded label set) are emitted alphabetically, each under
// one HELP/TYPE header, so per-switch instances of a fabric metric read
// as one family with a switch label.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type sample struct {
		name string
		typ  string
		help string
		val  float64
		hist *Histogram
	}
	samples := make(map[string]sample, len(r.byName))
	names := make([]string, 0, len(r.byName))
	for _, c := range r.counters {
		samples[c.name] = sample{name: c.name, typ: "counter", help: c.help, val: float64(c.Value())}
		names = append(names, c.name)
	}
	for _, g := range r.gauges {
		samples[g.name] = sample{name: g.name, typ: "gauge", help: g.help, val: float64(g.Value())}
		names = append(names, g.name)
	}
	funcs := append([]funcMetric(nil), r.funcs...)
	for _, h := range r.hists {
		samples[h.name] = sample{name: h.name, typ: "histogram", help: h.help, hist: h}
		names = append(names, h.name)
	}
	r.mu.Unlock()
	// Func metrics are evaluated outside the registry lock: their
	// callbacks reach into live pipeline state (queue depths, table
	// sizes) and must be free to take other locks.
	for _, f := range funcs {
		samples[f.name] = sample{name: f.name, typ: f.typ, help: f.help, val: float64(f.collect())}
		names = append(names, f.name)
	}

	sortedByFamily(names)
	bw := bufio.NewWriter(w)
	lastFam := ""
	for _, name := range names {
		s := samples[name]
		fam, labels := family(name)
		if fam != lastFam {
			fmt.Fprintf(bw, "# HELP %s %s\n", fam, s.help)
			fmt.Fprintf(bw, "# TYPE %s %s\n", fam, s.typ)
			lastFam = fam
		}
		if s.hist == nil {
			fmt.Fprintf(bw, "%s %s\n", name, formatFloat(s.val))
			continue
		}
		writeHistogram(bw, fam, labels, s.hist)
	}
	return bw.Flush()
}

// writeHistogram emits one histogram's cumulative buckets, sum and count.
func writeHistogram(w io.Writer, fam, labels string, h *Histogram) {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", fam, labelPrefix(labels), formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", fam, labelPrefix(labels), cum)
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", fam, suffix, formatFloat(h.Sum().Seconds()))
	fmt.Fprintf(w, "%s_count%s %d\n", fam, suffix, h.Count())
}

func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the observability endpoint over the registry:
//
//	/metrics        Prometheus text format
//	/debug/windows  JSON dump of the window-lifecycle trace ring
//	/debug/pprof/   the standard net/http/pprof profiles
//
// pprof handlers are mounted explicitly on the returned mux — nothing is
// registered on http.DefaultServeMux, so embedding programs keep control
// of their global handler space.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/windows", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		events := r.Ring(0).Snapshot()
		if n, err := strconv.Atoi(req.URL.Query().Get("last")); err == nil && n > 0 && n < len(events) {
			events = events[len(events)-n:]
		}
		_ = json.NewEncoder(w).Encode(struct {
			Total  uint64  `json:"total_events"`
			Events []Event `json:"events"`
		}{Total: r.Ring(0).Total(), Events: events})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	once sync.Once
	done chan struct{}
}

// Serve starts the observability endpoint on addr (":0" picks a free
// port; read the result's Addr). It returns once the listener is bound,
// serving in a background goroutine.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: Handler(r), ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound address (host:port).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the endpoint's base URL.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	host := s.Addr()
	if strings.HasPrefix(host, "[::]") {
		host = "127.0.0.1" + strings.TrimPrefix(host, "[::]")
	}
	return "http://" + host
}

// Close stops the server and waits for the serve goroutine to exit. Safe
// to call more than once; a nil *Server is a no-op.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	var err error
	s.once.Do(func() {
		err = s.srv.Close()
		<-s.done
	})
	return err
}
