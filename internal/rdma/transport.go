package rdma

import (
	"sync"
	"time"

	"omniwindow/internal/faults"
	"omniwindow/internal/packet"
)

// This file is the fault-tolerant transport over the raw verb substrate in
// rdma.go: a queue-pair state machine (RTS → Error → Recovering → RTS)
// with completion-queue error reporting, RNR-style bounded retry for
// transient verb errors, a PSN-sequenced replay window for in-flight loss
// (the controller detects gaps at drain time and NACKs them back), and
// memory-region re-registration with AddressMAT rebuild after QP resets or
// controller failover. When the QP is down or retries exhaust, Send
// reports not-delivered and the deployment reroutes the record through the
// ordinary packet C&R path mid-sub-window — the controller's per-seq dedup
// makes the handoff exact.
//
// Loss accounting follows the repo-wide contract: every record the
// transport irrecoverably drops (cold-buffer overflow, replay-window
// eviction, invalidation of unreplayable verbs) is charged to the OnShed
// hook — Shed measures pressure whether or not the record is repaired via
// fallback, and Missing measures the damage left after recovery.

// QPState is the queue pair's lifecycle state.
type QPState uint8

const (
	// QPRts: ready to send — verbs flow.
	QPRts QPState = iota
	// QPError: the CQ reported a persistent failure (or the fault
	// schedule fired an async QP error); every send falls back to the
	// packet path until recovery succeeds at a boundary.
	QPError
	// QPRecovering: boundary recovery in progress — the AddressMAT is
	// being invalidated and rebuilt and pending verbs replayed; the
	// state commits back to RTS when the boundary's drain completes.
	QPRecovering
)

var qpStateNames = [...]string{
	QPRts:        "RTS",
	QPError:      "ERROR",
	QPRecovering: "RECOVERING",
}

// String names the state as the QP state gauge and owtop display it.
func (s QPState) String() string {
	if int(s) < len(qpStateNames) {
		return qpStateNames[s]
	}
	return "unknown"
}

// TransportConfig sizes and parameterizes a Transport.
type TransportConfig struct {
	// Rows, Lanes, BufCap size the registered memory region (hot-key
	// rows × per-sub-window lanes, plus the cold append buffer).
	Rows, Lanes, BufCap int
	// VerbRetries is how many RNR-style retries follow a verb's first
	// failed attempt before the CQ error becomes persistent and the QP
	// faults to Error. 0 means the default (3); negative disables
	// retries entirely.
	VerbRetries int
	// RNRBackoff is the virtual wait before each retry, doubling per
	// attempt (capped at 32× the base). 0 means the default (2µs).
	// The accumulated wait is charged to the C&R budget via
	// TakeRetryWait.
	RNRBackoff time.Duration
	// ReplayDepth bounds the PSN replay window: how many unacked verbs
	// the transport can replay after in-flight loss or region
	// invalidation. Older verbs are evicted; an evicted unapplied verb
	// is permanently lost (charged to OnShed). 0 means the default
	// (8192).
	ReplayDepth int
	// Faults is the deterministic fault schedule (nil = healthy).
	Faults *faults.RDMASchedule
	// Injector is the legacy per-verb completion-error hook (e.g. a
	// seeded faults.Injector's Verb method); consulted on every attempt
	// in addition to Faults.
	Injector func(op string, addr int) error
	// OnShed is charged whenever the transport irrecoverably drops
	// records destined for a sub-window (overflow, eviction,
	// invalidation). Nil ignores the charge.
	OnShed func(sw uint64, n int)
}

// TransportStats counts the transport's fault and recovery events.
type TransportStats struct {
	// VerbErrors / VerbRetries count injected completion errors and the
	// RNR retries they triggered.
	VerbErrors, VerbRetries int
	// PSNDrops counts verbs lost in flight; Replayed counts verbs
	// re-applied by the NACK/replay loop.
	PSNDrops, Replayed int
	// Fallbacks counts records handed back to the packet C&R path.
	Fallbacks int
	// Overflows counts cold-buffer overflow rejections.
	Overflows int
	// Lost counts records the transport dropped irrecoverably (they are
	// also charged to OnShed and surface as missing seqs).
	Lost int
	// QPErrors / QPRecoveries count Error transitions and successful
	// boundary recoveries.
	QPErrors, QPRecoveries int
	// MRInvalidations counts schedule-driven region destructions;
	// Reregistrations counts fresh registrations (invalidation or
	// failover); MATRebuilds counts AddressMAT invalidate+rebuild
	// passes (every recovery or re-registration runs one).
	MRInvalidations, Reregistrations, MATRebuilds int
}

// pendingVerb is one unacked verb in the PSN replay window.
type pendingVerb struct {
	rec      packet.AFR
	psn      uint32
	idx      uint64 // verb index parameterizing the fault schedule
	attempts int    // highest attempt number drawn so far
	hot      bool
	applied  bool // false: lost in flight (a PSN gap) or wiped by invalidation
}

// Transport owns the RDMA collection plumbing for one deployment: the
// registered memory region, the RNIC, the switch-side AddressMAT mirror,
// the hot-key row table and the QP state machine. Methods are safe for
// concurrent use (the deployment drives it single-threaded, but metric
// scrapes read state and stats concurrently).
type Transport struct {
	mu  sync.Mutex
	mr  *MemoryRegion
	nic *NIC
	mat *AddressMAT

	state QPState

	rows   map[packet.FlowKey]int    // hot key → row base address
	hotSeq map[packet.FlowKey]uint32 // applied hot writes this drain interval → true seq

	pending     []pendingVerb
	unprotected map[uint64]int // applied verbs evicted from the window, per sub-window
	psnScratch  []uint32

	nextPSN     uint32
	verbIdx     uint64
	verbRetries int
	rnrBackoff  time.Duration
	replayDepth int
	retryWait   time.Duration

	faults   *faults.RDMASchedule
	injector func(op string, addr int) error
	onShed   func(sw uint64, n int)

	stats TransportStats
}

// NewTransport registers a memory region and brings the QP up in RTS.
func NewTransport(cfg TransportConfig) *Transport {
	mr := NewMemoryRegion(cfg.Rows, cfg.Lanes, cfg.BufCap)
	t := &Transport{
		mr:          mr,
		nic:         NewNIC(mr),
		mat:         NewAddressMAT(cfg.Rows),
		rows:        make(map[packet.FlowKey]int),
		hotSeq:      make(map[packet.FlowKey]uint32),
		unprotected: make(map[uint64]int),
		faults:      cfg.Faults,
		injector:    cfg.Injector,
		onShed:      cfg.OnShed,
	}
	switch {
	case cfg.VerbRetries < 0:
		t.verbRetries = 0
	case cfg.VerbRetries == 0:
		t.verbRetries = 3
	default:
		t.verbRetries = cfg.VerbRetries
	}
	if t.rnrBackoff = cfg.RNRBackoff; t.rnrBackoff <= 0 {
		t.rnrBackoff = 2 * time.Microsecond
	}
	if t.replayDepth = cfg.ReplayDepth; t.replayDepth <= 0 {
		t.replayDepth = 8192
	}
	return t
}

// State returns the QP state.
func (t *Transport) State() QPState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// Stats returns a snapshot of the fault/recovery counters.
func (t *Transport) Stats() TransportStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// NIC exposes the RNIC (verb counters for the experiments).
func (t *Transport) NIC() *NIC { return t.nic }

// MATLen reports the AddressMAT's entry count.
func (t *Transport) MATLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.mat.Len()
}

// PendingLen reports the replay window's occupancy.
func (t *Transport) PendingLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pending)
}

// TakeRetryWait returns and resets the accumulated virtual RNR backoff,
// for the deployment to charge to the C&R budget.
func (t *Transport) TakeRetryWait() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.retryWait
	t.retryWait = 0
	return w
}

func (t *Transport) shed(sw uint64, n int) {
	if t.onShed != nil && n > 0 {
		t.onShed(sw, n)
	}
}

// Promote installs a hot key: a row is allocated and its base address
// published to the switch-side AddressMAT. Reports false when the row
// table is exhausted (the key stays cold).
func (t *Transport) Promote(k packet.FlowKey) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.rows[k]; ok {
		return true
	}
	base, ok := t.mr.AllocRow()
	if !ok {
		return false
	}
	t.rows[k] = base
	t.mat.Insert(k, base)
	return true
}

// Demote retires a hot key: the MAT entry is withdrawn so the switch
// sends the key cold again. (The row itself is not reclaimed — the
// allocator is monotonic, matching the switch-side address arithmetic.)
func (t *Transport) Demote(k packet.FlowKey) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mat.Delete(k)
	delete(t.rows, k)
}

// HotRows reports the number of installed hot keys.
func (t *Transport) HotRows() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.rows)
}

// verbFault draws one attempt's completion-error fate from the schedule
// and the legacy injector hook. Caller holds t.mu.
func (t *Transport) verbFault(op string, addr int, idx uint64, attempt int) bool {
	if t.faults.VerbErrorAt(idx, attempt) {
		return true
	}
	if t.injector != nil && t.injector(op, addr) != nil {
		return true
	}
	return false
}

// track enrolls one sent verb in the PSN replay window, evicting the
// oldest entry when the window is full. Caller holds t.mu.
func (t *Transport) track(rec packet.AFR, hot bool, idx uint64, attempt int, applied bool) {
	if len(t.pending) >= t.replayDepth {
		e := t.pending[0]
		n := copy(t.pending, t.pending[1:])
		t.pending = t.pending[:n]
		if !e.applied {
			// Evicted before ever reaching the region: permanently
			// lost — charged to shed, surfaces as a missing seq.
			t.shed(e.rec.SubWindow, 1)
			t.stats.Lost++
		} else {
			// Applied but no longer replayable: lost only if the
			// region is invalidated before the next drain.
			t.unprotected[e.rec.SubWindow]++
		}
	}
	t.pending = append(t.pending, pendingVerb{
		rec: rec, psn: t.nextPSN, idx: idx, attempts: attempt, hot: hot, applied: applied,
	})
	t.nextPSN++
}

// Send transmits one AFR over the RDMA path. hot reports whether the
// hot-row fast path carried it; delivered=false means the transport could
// not take the record (QP down, retries exhausted, or cold-buffer
// overflow) and the caller must reroute it through the packet C&R path.
// The steady-state success path performs no allocation.
func (t *Transport) Send(rec packet.AFR) (hot, delivered bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != QPRts {
		t.stats.Fallbacks++
		return false, false
	}
	base, isHot := t.rows[rec.Key]
	op, addr := "append", -1
	if isHot {
		op = "write"
		addr = base + int(rec.SubWindow)%t.mr.Lanes()
	}
	idx := t.verbIdx
	t.verbIdx++
	backoff := t.rnrBackoff
	maxBackoff := t.rnrBackoff * 32
	for a := 0; a <= t.verbRetries; a++ {
		if a > 0 {
			// RNR-style retry: back off (virtual time, charged to the
			// C&R budget) and redraw the verb's fate.
			t.stats.VerbRetries++
			t.retryWait += backoff
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
		if t.verbFault(op, addr, idx, a) {
			t.stats.VerbErrors++
			continue
		}
		// The request left the requester successfully; in-flight loss
		// surfaces as a PSN gap at the next drain, not as a CQ error.
		if t.faults.PSNDropAt(idx, a) {
			t.stats.PSNDrops++
			t.track(rec, isHot, idx, a, false)
			return isHot, true
		}
		if isHot {
			if t.nic.Write(addr, rec.Attr) != nil {
				t.stats.VerbErrors++
				continue
			}
			t.hotSeq[rec.Key] = rec.Seq
		} else {
			if err := t.nic.Append(rec); err != nil {
				if err == ErrBufferFull {
					// Cold-buffer overflow: the record never lands in
					// the region. Charge shed accounting and hand it
					// back for the packet path.
					t.stats.Overflows++
					t.stats.Fallbacks++
					t.shed(rec.SubWindow, 1)
					return false, false
				}
				t.stats.VerbErrors++
				continue
			}
		}
		t.track(rec, isHot, idx, a, true)
		return isHot, true
	}
	// Retries exhausted: the CQ reports a persistent completion error,
	// the QP faults to Error, and this record — plus every subsequent
	// send until boundary recovery — falls back to the packet path.
	t.state = QPError
	t.stats.QPErrors++
	t.stats.Fallbacks++
	return false, false
}

// BeginBoundary applies boundary-driven faults that strike before a
// sub-window's collection traffic: an async QP error makes every send of
// the upcoming C&R round fall back mid-sub-window.
func (t *Transport) BeginBoundary(sw uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state == QPRts && t.faults.QPErrorAt(sw) {
		t.state = QPError
		t.stats.QPErrors++
	}
}

// BeginCollect runs the pre-drain recovery step for boundary sw: a
// scheduled region invalidation destroys applied-but-undrained verbs
// (re-registering the region and marking the replay window for re-apply),
// and a QP in Error attempts recovery — refused during a scheduled
// outage, otherwise transitioning Error → Recovering with the AddressMAT
// invalidated and rebuilt. Recovering commits back to RTS when Drain
// completes the boundary.
func (t *Transport) BeginCollect(sw uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.faults.MRInvalidateAt(sw) {
		t.stats.MRInvalidations++
		t.reregisterLocked()
	}
	if t.state == QPError && !t.faults.OutageAt(sw) {
		t.state = QPRecovering
		t.stats.QPRecoveries++
		t.rebuildMATLocked()
	}
}

// Reregister performs a full memory-region re-registration: a promoted
// standby (or a QP reset) owns fresh memory, so rows are re-allocated,
// the AddressMAT is invalidated and rebuilt with the new addresses, and
// every applied-but-undrained verb is marked for replay into the new
// region. Records that already fell out of the replay window are
// permanently lost and charged to shed.
func (t *Transport) Reregister() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reregisterLocked()
}

func (t *Transport) reregisterLocked() {
	t.stats.Reregistrations++
	t.mr.Invalidate()
	for k := range t.rows {
		base, ok := t.mr.AllocRow()
		if !ok {
			// Unreachable with matching capacities; drop the key to
			// cold rather than alias a stale address.
			t.mat.Delete(k)
			delete(t.rows, k)
			continue
		}
		t.rows[k] = base
	}
	t.rebuildMATLocked()
	// Applied verbs died with the old registration: replay them into the
	// fresh region. Applied verbs already evicted from the replay window
	// cannot come back — they are lost for good.
	for i := range t.pending {
		t.pending[i].applied = false
	}
	clear(t.hotSeq)
	for sw, n := range t.unprotected {
		t.shed(sw, n)
		t.stats.Lost += n
	}
	clear(t.unprotected)
}

// rebuildMATLocked republishes every hot key's current base address —
// the switch re-resolves hot-key destinations after a recovery or
// re-registration. Caller holds t.mu.
func (t *Transport) rebuildMATLocked() {
	t.stats.MATRebuilds++
	for k, base := range t.rows {
		t.mat.Insert(k, base)
	}
}

// MissingPSNs lists the PSNs of verbs sent but never applied — the gaps
// the controller-side scan detects at collect time. It feeds
// controller.RecoverSubWindow as the `missing` hook.
func (t *Transport) MissingPSNs() []uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []uint32
	for i := range t.pending {
		if !t.pending[i].applied {
			out = append(out, t.pending[i].psn)
		}
	}
	return out
}

// Replay re-executes the NACKed PSNs' verbs against the region, redrawing
// each attempt's fate from the fault schedule. It returns how many verbs
// applied. A QP in Error cannot replay (the deployment falls back
// instead); Recovering can — replay is part of recovery.
func (t *Transport) Replay(psns []uint32) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state == QPError {
		return 0
	}
	applied := 0
	for _, psn := range psns {
		for i := range t.pending {
			e := &t.pending[i]
			if e.psn != psn || e.applied {
				continue
			}
			e.attempts++
			op, addr := "append", -1
			if e.hot {
				addr = t.rows[e.rec.Key] + int(e.rec.SubWindow)%t.mr.Lanes()
				op = "write"
			}
			if t.verbFault(op, addr, e.idx, e.attempts) {
				t.stats.VerbErrors++
				break
			}
			if t.faults.PSNDropAt(e.idx, e.attempts) {
				t.stats.PSNDrops++
				break
			}
			if e.hot {
				if t.nic.Write(addr, e.rec.Attr) != nil {
					t.stats.VerbErrors++
					break
				}
				t.hotSeq[e.rec.Key] = e.rec.Seq
			} else if t.nic.Append(e.rec) != nil {
				break // buffer full again: stays unapplied for fallback
			}
			e.applied = true
			applied++
			t.stats.Replayed++
			break
		}
	}
	return applied
}

// TakeUnapplied removes and returns the records whose verbs never
// applied — the replay budget is exhausted (or the QP is down) and the
// deployment hands them to the packet C&R path, mid-sub-window, with
// their original sequence numbers so the controller's dedup keeps the
// transport switch exact.
func (t *Transport) TakeUnapplied() []packet.AFR {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []packet.AFR
	kept := t.pending[:0]
	for _, e := range t.pending {
		if e.applied {
			kept = append(kept, e)
		} else {
			out = append(out, e.rec)
			t.stats.Fallbacks++
		}
	}
	t.pending = kept
	return out
}

// Drain consumes boundary sw's delivered records: the cold buffer is
// handed off wholesale and each hot key written this interval is read
// back from its per-sub-window lane with its true enumeration sequence
// number (then the lane resets for the next same-lane sub-window). The
// replay window acks — any verb still unapplied here (the caller already
// took the fallback set) is permanently lost and charged to shed — and a
// Recovering QP commits back to RTS.
func (t *Transport) Drain(sw uint64) (cold, hot []packet.AFR) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cold = t.nic.Drain()
	lane := int(sw) % t.mr.Lanes()
	for k, seq := range t.hotSeq {
		base, ok := t.rows[k]
		if !ok {
			continue
		}
		hot = append(hot, packet.AFR{Key: k, Attr: t.mr.slots[base+lane], SubWindow: sw, Seq: seq})
		t.mr.ResetLane(base, lane)
	}
	for _, e := range t.pending {
		if !e.applied {
			t.shed(e.rec.SubWindow, 1)
			t.stats.Lost++
		}
	}
	t.pending = t.pending[:0]
	clear(t.hotSeq)
	clear(t.unprotected)
	if t.state == QPRecovering {
		t.state = QPRts
	}
	return cold, hot
}
