// Package rdma simulates the RDMA-based collection optimization of §7:
// switches encapsulate AFRs into RoCEv2 WRITE / Fetch-and-Add requests that
// land directly in a registered controller memory region, bypassing the
// controller CPU. Hot keys carry cached destination addresses from a
// switch-side address MAT; cold keys append to a sequentially growing
// buffer whose addresses the switch computes itself.
//
// The simulation preserves the two properties the evaluation depends on:
// verbs consume no controller CPU (only the cold-key drain does), and each
// verb has a fixed RNIC latency from the switchsim cost model.
package rdma

import (
	"errors"
	"fmt"

	"omniwindow/internal/afr"
	"omniwindow/internal/packet"
)

// ErrBufferFull reports that the cold-key append buffer overflowed before
// the controller drained it.
var ErrBufferFull = errors.New("rdma: cold-key buffer full")

// MemoryRegion is the RDMA-registered controller memory: a hot-key table
// of fixed-size rows plus a cold-key append buffer.
type MemoryRegion struct {
	// lanes is the number of slots per hot-key row: one per sub-window
	// position within a window, so per-sub-window attributes group by key
	// ("the AFRs of different sub-windows are grouped based on keys").
	lanes int
	slots []uint64
	rows  int
	used  int

	buffer []packet.AFR
	bufCap int
}

// NewMemoryRegion registers memory for `rows` hot keys of `lanes` slots
// each and a cold buffer of bufCap records.
func NewMemoryRegion(rows, lanes, bufCap int) *MemoryRegion {
	if rows <= 0 || lanes <= 0 || bufCap <= 0 {
		panic("rdma: memory region dimensions must be positive")
	}
	return &MemoryRegion{
		lanes:  lanes,
		slots:  make([]uint64, rows*lanes),
		rows:   rows,
		buffer: make([]packet.AFR, 0, bufCap),
		bufCap: bufCap,
	}
}

// AllocRow reserves the next hot-key row and returns its base address, or
// false when the table is full.
func (mr *MemoryRegion) AllocRow() (base int, ok bool) {
	if mr.used >= mr.rows {
		return 0, false
	}
	base = mr.used * mr.lanes
	mr.used++
	return base, true
}

// Lanes returns the row width.
func (mr *MemoryRegion) Lanes() int { return mr.lanes }

// ReadRow returns a copy of a hot-key row.
func (mr *MemoryRegion) ReadRow(base int) []uint64 {
	return append([]uint64(nil), mr.slots[base:base+mr.lanes]...)
}

// ResetRow zeroes a hot-key row (after the controller consumed a window).
func (mr *MemoryRegion) ResetRow(base int) {
	clear(mr.slots[base : base+mr.lanes])
}

// ResetLane zeroes one slot of a hot-key row, freeing it for the next
// sub-window that maps to the same lane.
func (mr *MemoryRegion) ResetLane(base, lane int) {
	mr.slots[base+lane] = 0
}

// Invalidate models the registration being torn down: every hot-key slot
// is zeroed, buffered cold records are destroyed, and the row allocator
// rewinds so a re-registration starts from a clean region. Verbs applied
// but not yet drained die with the registration — the transport's replay
// window is what brings them back.
func (mr *MemoryRegion) Invalidate() {
	clear(mr.slots)
	mr.buffer = mr.buffer[:0]
	mr.used = 0
}

// NIC is the controller-side RNIC executing incoming verbs. It counts
// operations so experiments can derive virtual time and verify that the
// hot path needed no controller CPU.
type NIC struct {
	mr *MemoryRegion
	// psn is the RoCEv2 packet sequence number register the switch-side
	// request constructor maintains (§8).
	psn uint32
	// faults, when non-nil, is consulted before each verb executes and
	// may fail it with an injected completion error (the op names are
	// "write", "fetch_add", "append"). The verb then has no effect on
	// the memory region — the RoCE transport reports the failure to the
	// requester, who falls back to the packet path.
	faults func(op string, addr int) error

	Writes     int
	FetchAdds  int
	Appends    int
	Failures   int
	Sequential bool
}

// NewNIC attaches an RNIC to a memory region.
func NewNIC(mr *MemoryRegion) *NIC {
	return &NIC{mr: mr, Sequential: true}
}

// PSN returns the current packet sequence number.
func (n *NIC) PSN() uint32 { return n.psn }

// SetFaults installs a verb-completion fault hook (e.g. a seeded
// faults.Injector's Verb method). Pass nil to clear it.
func (n *NIC) SetFaults(f func(op string, addr int) error) { n.faults = f }

// injectFault consults the fault hook for one verb.
func (n *NIC) injectFault(op string, addr int) error {
	if n.faults == nil {
		return nil
	}
	if err := n.faults(op, addr); err != nil {
		n.Failures++
		return err
	}
	return nil
}

// Write executes an RDMA WRITE of value into slot addr.
func (n *NIC) Write(addr int, value uint64) error {
	n.psn++
	if err := n.injectFault("write", addr); err != nil {
		return err
	}
	if addr < 0 || addr >= len(n.mr.slots) {
		return fmt.Errorf("rdma: WRITE to invalid address %d", addr)
	}
	n.mr.slots[addr] = value
	n.Writes++
	return nil
}

// FetchAdd executes an RDMA Fetch-and-Add, returning the previous value.
func (n *NIC) FetchAdd(addr int, delta uint64) (uint64, error) {
	n.psn++
	if err := n.injectFault("fetch_add", addr); err != nil {
		return 0, err
	}
	if addr < 0 || addr >= len(n.mr.slots) {
		return 0, fmt.Errorf("rdma: FETCH_ADD to invalid address %d", addr)
	}
	old := n.mr.slots[addr]
	n.mr.slots[addr] = old + delta
	n.FetchAdds++
	return old, nil
}

// Append writes a cold-key AFR to the sequential buffer. The switch
// computes the target address itself because the buffer grows
// sequentially; the simulation enforces only capacity.
func (n *NIC) Append(rec packet.AFR) error {
	n.psn++
	if err := n.injectFault("append", -1); err != nil {
		return err
	}
	if len(n.mr.buffer) >= n.mr.bufCap {
		return ErrBufferFull
	}
	n.mr.buffer = append(n.mr.buffer, rec)
	n.Appends++
	return nil
}

// Drain hands the buffered cold-key AFRs to the controller CPU and clears
// the buffer — the only RDMA-path step that costs controller cycles.
func (n *NIC) Drain() []packet.AFR {
	out := append([]packet.AFR(nil), n.mr.buffer...)
	n.mr.buffer = n.mr.buffer[:0]
	return out
}

// AddressMAT is the switch-side match-action table caching controller
// memory addresses for hot keys.
type AddressMAT struct {
	capacity int
	m        map[packet.FlowKey]int
}

// NewAddressMAT builds a MAT with the given capacity.
func NewAddressMAT(capacity int) *AddressMAT {
	if capacity <= 0 {
		panic("rdma: address MAT capacity must be positive")
	}
	return &AddressMAT{capacity: capacity, m: make(map[packet.FlowKey]int)}
}

// Insert installs a hot key's base address (controller notification).
// It reports false when the MAT is full.
func (m *AddressMAT) Insert(k packet.FlowKey, base int) bool {
	if _, ok := m.m[k]; !ok && len(m.m) >= m.capacity {
		return false
	}
	m.m[k] = base
	return true
}

// Delete removes a cold key's entry (controller notification).
func (m *AddressMAT) Delete(k packet.FlowKey) { delete(m.m, k) }

// Lookup matches a flow key, returning its base address.
func (m *AddressMAT) Lookup(k packet.FlowKey) (base int, ok bool) {
	base, ok = m.m[k]
	return base, ok
}

// Len returns the number of installed entries.
func (m *AddressMAT) Len() int { return len(m.m) }

// Collector is the switch-side RDMA request constructor: for each AFR it
// either aggregates into the hot row (Fetch-and-Add for frequency-like
// statistics, WRITE into the sub-window lane otherwise) or appends to the
// cold buffer.
type Collector struct {
	mat *AddressMAT
	nic *NIC
}

// NewCollector wires the address MAT to the RNIC.
func NewCollector(mat *AddressMAT, nic *NIC) *Collector {
	return &Collector{mat: mat, nic: nic}
}

// Send transmits one AFR. hot reports whether the fast path was used.
func (c *Collector) Send(rec packet.AFR, kind afr.Kind) (hot bool, err error) {
	base, ok := c.mat.Lookup(rec.Key)
	if !ok {
		return false, c.nic.Append(rec)
	}
	lane := int(rec.SubWindow) % c.nic.mr.Lanes()
	switch kind {
	case afr.Frequency:
		// Offload the sum to the RNIC: one Fetch-and-Add into lane 0.
		_, err = c.nic.FetchAdd(base, rec.Attr)
	default:
		// Group per-sub-window attributes by key for controller-side
		// merging of non-summable statistics.
		err = c.nic.Write(base+lane, rec.Attr)
	}
	return true, err
}

// SendGrouped transmits one AFR, always WRITE-ing into the key's
// per-sub-window lane. Deployments that let the controller own merging
// (so sliding windows can evict sub-windows) use this instead of the
// Fetch-and-Add aggregation.
func (c *Collector) SendGrouped(rec packet.AFR) (hot bool, err error) {
	base, ok := c.mat.Lookup(rec.Key)
	if !ok {
		return false, c.nic.Append(rec)
	}
	lane := int(rec.SubWindow) % c.nic.mr.Lanes()
	return true, c.nic.Write(base+lane, rec.Attr)
}
