package rdma

import (
	"math/rand"
	"testing"

	"omniwindow/internal/faults"
	"omniwindow/internal/packet"
)

func healthyTransport(rows, lanes, bufCap int) *Transport {
	return NewTransport(TransportConfig{Rows: rows, Lanes: lanes, BufCap: bufCap})
}

func seqRec(key, sw int, seq uint32, attr uint64) packet.AFR {
	return packet.AFR{Key: fk(key), SubWindow: uint64(sw), Seq: seq, Attr: attr}
}

// TestTransportQPStateTable walks the QP lifecycle through every
// transition the state machine defines.
func TestTransportQPStateTable(t *testing.T) {
	steps := []struct {
		name string
		do   func(tr *Transport)
		want QPState
	}{
		{"fresh transport is RTS", func(tr *Transport) {}, QPRts},
		{"scheduled QP error faults to Error", func(tr *Transport) {
			tr.BeginBoundary(1)
		}, QPError},
		{"recovery refused during outage", func(tr *Transport) {
			tr.BeginCollect(1) // boundary 1 is inside the outage
		}, QPError},
		{"replay refused in Error", func(tr *Transport) {
			if tr.Replay([]uint32{0}) != 0 {
				t.Fatal("Error-state QP replayed a verb")
			}
		}, QPError},
		{"recovery enters Recovering once the outage lifts", func(tr *Transport) {
			tr.BeginCollect(3)
		}, QPRecovering},
		{"drain commits Recovering back to RTS", func(tr *Transport) {
			tr.Drain(3)
		}, QPRts},
	}
	tr := NewTransport(TransportConfig{Rows: 4, Lanes: 3, BufCap: 16,
		Faults: &faults.RDMASchedule{
			QPError:     faults.CrashSchedule{Fixed: []uint64{1}},
			OutageStart: 1, OutageLen: 2,
		}})
	for _, s := range steps {
		s.do(tr)
		if got := tr.State(); got != s.want {
			t.Fatalf("%s: state = %v, want %v", s.name, got, s.want)
		}
	}
	st := tr.Stats()
	if st.QPErrors != 1 || st.QPRecoveries != 1 || st.MATRebuilds != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTransportErrorFallsBackSeamlessly: a QP in Error takes nothing —
// every send reports not-delivered so the caller reroutes mid-sub-window.
func TestTransportErrorFallsBackSeamlessly(t *testing.T) {
	tr := NewTransport(TransportConfig{Rows: 4, Lanes: 3, BufCap: 16,
		Faults: &faults.RDMASchedule{QPError: faults.CrashSchedule{Fixed: []uint64{0}}}})
	tr.BeginBoundary(0)
	for i := 0; i < 5; i++ {
		if _, delivered := tr.Send(seqRec(i, 0, uint32(i), 1)); delivered {
			t.Fatal("Error-state QP accepted a verb")
		}
	}
	if st := tr.Stats(); st.Fallbacks != 5 {
		t.Fatalf("fallbacks = %d, want 5", st.Fallbacks)
	}
	cold, hot := tr.Drain(0)
	if len(cold) != 0 || len(hot) != 0 {
		t.Fatal("Error-state QP delivered records")
	}
}

// TestTransportRetriesExhaustFaultQP: a verb that fails every RNR retry
// becomes a persistent CQ error — the QP faults to Error and the record
// falls back; the accumulated backoff is charged as virtual wait.
func TestTransportRetriesExhaustFaultQP(t *testing.T) {
	tr := NewTransport(TransportConfig{Rows: 4, Lanes: 3, BufCap: 16,
		VerbRetries: 2, Faults: &faults.RDMASchedule{VerbError: 1.0}})
	if _, delivered := tr.Send(seqRec(1, 0, 1, 7)); delivered {
		t.Fatal("always-failing verb was delivered")
	}
	if got := tr.State(); got != QPError {
		t.Fatalf("state = %v, want Error", got)
	}
	st := tr.Stats()
	if st.VerbErrors != 3 || st.VerbRetries != 2 || st.QPErrors != 1 || st.Fallbacks != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if tr.TakeRetryWait() <= 0 {
		t.Fatal("no virtual backoff charged for the RNR retries")
	}
	if tr.TakeRetryWait() != 0 {
		t.Fatal("TakeRetryWait did not reset")
	}
}

// TestTransportRNRRetryRecovers: a transiently failing verb succeeds on a
// later attempt without surfacing to the caller.
func TestTransportRNRRetryRecovers(t *testing.T) {
	// Seed 5 / 50%: verified by TestRDMAScheduleAttemptsIndependent to
	// contain verbs that fail attempt 0 and pass attempt 1. The deep
	// retry budget keeps every one of the 200 verbs within it.
	tr := NewTransport(TransportConfig{Rows: 4, Lanes: 3, BufCap: 1 << 10,
		VerbRetries: 12, Faults: &faults.RDMASchedule{Seed: 5, VerbError: 0.5}})
	for i := 0; i < 200; i++ {
		tr.Send(seqRec(i, 0, uint32(i), 1))
		if tr.State() != QPRts {
			t.Fatalf("QP faulted at verb %d despite retry budget", i)
		}
	}
	st := tr.Stats()
	if st.VerbErrors == 0 || st.VerbRetries == 0 {
		t.Fatalf("no retries exercised: %+v", st)
	}
	cold, _ := tr.Drain(0)
	if len(cold) != 200 {
		t.Fatalf("drained %d cold records, want 200", len(cold))
	}
}

// TestTransportPSNGapReplay: dropped-in-flight verbs surface as PSN gaps,
// replay re-applies them, and the drain delivers every record with its
// true sequence number.
func TestTransportPSNGapReplay(t *testing.T) {
	// PSNDrop 1.0 on attempt parity would drop replays too; use a seeded
	// probabilistic schedule and loop replay rounds like the deployment's
	// bounded NACK loop does.
	tr := NewTransport(TransportConfig{Rows: 4, Lanes: 3, BufCap: 1 << 10,
		Faults: &faults.RDMASchedule{Seed: 9, PSNDrop: 0.4}})
	tr.Promote(fk(0))
	const n = 50
	for i := 0; i < n; i++ {
		if _, delivered := tr.Send(seqRec(i%5, 0, uint32(i), uint64(i+1))); !delivered {
			t.Fatalf("send %d not delivered", i)
		}
	}
	if tr.Stats().PSNDrops == 0 {
		t.Fatal("schedule injected no PSN drops")
	}
	for round := 0; round < 8; round++ {
		gaps := tr.MissingPSNs()
		if len(gaps) == 0 {
			break
		}
		tr.Replay(gaps)
	}
	if left := len(tr.MissingPSNs()); left != 0 {
		t.Fatalf("%d PSN gaps left after replay rounds", left)
	}
	if tr.Stats().Replayed == 0 {
		t.Fatal("replay applied nothing")
	}
	cold, hot := tr.Drain(0)
	seen := map[uint32]bool{}
	for _, r := range append(cold, hot...) {
		if seen[r.Seq] {
			t.Fatalf("seq %d delivered twice", r.Seq)
		}
		seen[r.Seq] = true
	}
	// The hot key was written for seqs 0,5,..,45 but a lane holds one
	// value per (key, sub-window): only the last applied write survives.
	// Cold seqs (the other 40) must all be present.
	for i := 0; i < n; i++ {
		if i%5 == 0 {
			continue
		}
		if !seen[uint32(i)] {
			t.Fatalf("cold seq %d lost", i)
		}
	}
	if len(hot) != 1 || tr.Stats().Lost != 0 {
		t.Fatalf("hot = %d records, lost = %d", len(hot), tr.Stats().Lost)
	}
}

// TestTransportReplayBudgetExhaustedFallsBack: gaps that replay cannot
// close are handed back as records for the packet path — none lost, none
// duplicated.
func TestTransportReplayBudgetExhaustedFallsBack(t *testing.T) {
	tr := NewTransport(TransportConfig{Rows: 4, Lanes: 3, BufCap: 1 << 10,
		Faults: &faults.RDMASchedule{Seed: 2, PSNDrop: 1.0}})
	const n = 10
	for i := 0; i < n; i++ {
		tr.Send(seqRec(i, 0, uint32(i), 1))
	}
	tr.Replay(tr.MissingPSNs()) // every replay drops again
	fallback := tr.TakeUnapplied()
	if len(fallback) != n {
		t.Fatalf("fallback carried %d records, want %d", len(fallback), n)
	}
	cold, hot := tr.Drain(0)
	if len(cold)+len(hot) != 0 {
		t.Fatal("dropped verbs also drained")
	}
	if st := tr.Stats(); st.Lost != 0 || st.Fallbacks != n {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTransportDrainShedsAbandonedGaps: unapplied verbs the caller never
// took for fallback are permanently lost at drain — charged to shed.
func TestTransportDrainShedsAbandonedGaps(t *testing.T) {
	var shed int
	tr := NewTransport(TransportConfig{Rows: 4, Lanes: 3, BufCap: 1 << 10,
		Faults: &faults.RDMASchedule{Seed: 2, PSNDrop: 1.0},
		OnShed: func(sw uint64, n int) { shed += n }})
	for i := 0; i < 5; i++ {
		tr.Send(seqRec(i, 0, uint32(i), 1))
	}
	tr.Drain(0)
	if shed != 5 || tr.Stats().Lost != 5 {
		t.Fatalf("shed = %d, lost = %d, want 5/5", shed, tr.Stats().Lost)
	}
}

// TestTransportColdOverflowShedsAndFallsBack: a full cold buffer rejects
// the record, charges shed accounting, and hands it back for the packet
// path instead of silently dropping it.
func TestTransportColdOverflowShedsAndFallsBack(t *testing.T) {
	var shed int
	tr := NewTransport(TransportConfig{Rows: 4, Lanes: 3, BufCap: 2,
		OnShed: func(sw uint64, n int) { shed += n }})
	delivered := 0
	for i := 0; i < 5; i++ {
		if _, ok := tr.Send(seqRec(i, 0, uint32(i), 1)); ok {
			delivered++
		}
	}
	if delivered != 2 {
		t.Fatalf("delivered %d, want buffer capacity 2", delivered)
	}
	st := tr.Stats()
	if st.Overflows != 3 || st.Fallbacks != 3 || shed != 3 {
		t.Fatalf("overflows = %d fallbacks = %d shed = %d", st.Overflows, st.Fallbacks, shed)
	}
	if tr.State() != QPRts {
		t.Fatal("overflow must not fault the QP")
	}
}

// TestTransportReregisterReplaysApplied: re-registration (QP reset or
// controller failover) wipes the region; the replay window re-applies
// every applied-but-undrained verb into the fresh registration and the
// AddressMAT is rebuilt, so the drain still delivers everything.
func TestTransportReregisterReplaysApplied(t *testing.T) {
	tr := healthyTransport(4, 3, 1<<10)
	tr.Promote(fk(0))
	tr.Promote(fk(1))
	for i := 0; i < 20; i++ {
		tr.Send(seqRec(i%4, 0, uint32(i), uint64(i+1)))
	}
	tr.Reregister()
	if got := tr.MATLen(); got != 2 {
		t.Fatalf("MAT entries after reregister = %d, want 2", got)
	}
	if gaps := tr.MissingPSNs(); len(gaps) != 20 {
		t.Fatalf("reregister marked %d verbs for replay, want all 20", len(gaps))
	}
	tr.Replay(tr.MissingPSNs())
	if left := len(tr.MissingPSNs()); left != 0 {
		t.Fatalf("%d gaps after healthy replay", left)
	}
	cold, hot := tr.Drain(0)
	// Keys 0 and 1 are hot (one lane value each); keys 2 and 3 are cold
	// (5 appends each).
	if len(hot) != 2 || len(cold) != 10 {
		t.Fatalf("drained hot=%d cold=%d, want 2/10", len(hot), len(cold))
	}
	for _, r := range hot {
		// The last write wins per lane: seqs 16 (key 0) and 17 (key 1).
		if r.Attr != uint64(r.Seq+1) {
			t.Fatalf("hot record %v lost its replayed value", r)
		}
	}
	st := tr.Stats()
	if st.Reregistrations != 1 || st.MATRebuilds != 1 || st.Lost != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTransportEvictionBeyondReplayDepth: the replay window is bounded.
// An evicted unapplied verb is lost immediately; an evicted applied verb
// survives unless a re-registration strikes before the drain.
func TestTransportEvictionBeyondReplayDepth(t *testing.T) {
	t.Run("unapplied evictions shed immediately", func(t *testing.T) {
		var shed int
		tr := NewTransport(TransportConfig{Rows: 4, Lanes: 3, BufCap: 1 << 10,
			ReplayDepth: 4,
			Faults:      &faults.RDMASchedule{Seed: 2, PSNDrop: 1.0},
			OnShed:      func(sw uint64, n int) { shed += n }})
		for i := 0; i < 10; i++ {
			tr.Send(seqRec(i, 0, uint32(i), 1))
		}
		if shed != 6 || tr.Stats().Lost != 6 {
			t.Fatalf("shed = %d lost = %d, want 6 evictions", shed, tr.Stats().Lost)
		}
	})
	t.Run("applied evictions lost only under reregistration", func(t *testing.T) {
		var shed int
		tr := NewTransport(TransportConfig{Rows: 4, Lanes: 3, BufCap: 1 << 10,
			ReplayDepth: 4, OnShed: func(sw uint64, n int) { shed += n }})
		for i := 0; i < 10; i++ {
			tr.Send(seqRec(i, 0, uint32(i), 1))
		}
		if shed != 0 {
			t.Fatal("healthy applied evictions must not shed")
		}
		tr.Reregister() // the 6 evicted applied verbs cannot be replayed
		if shed != 6 || tr.Stats().Lost != 6 {
			t.Fatalf("shed = %d lost = %d after reregister, want 6", shed, tr.Stats().Lost)
		}
		tr.Replay(tr.MissingPSNs())
		cold, _ := tr.Drain(0)
		if len(cold) != 4 {
			t.Fatalf("drained %d cold records, want the 4 still in the window", len(cold))
		}
	})
}

// TestTransportMRInvalidateAtBoundary: a scheduled region invalidation at
// BeginCollect behaves exactly like a reregistration.
func TestTransportMRInvalidateAtBoundary(t *testing.T) {
	tr := NewTransport(TransportConfig{Rows: 4, Lanes: 3, BufCap: 1 << 10,
		Faults: &faults.RDMASchedule{MRInvalidate: faults.CrashSchedule{Fixed: []uint64{0}}}})
	for i := 0; i < 8; i++ {
		tr.Send(seqRec(i, 0, uint32(i), 1))
	}
	tr.BeginCollect(0)
	if st := tr.Stats(); st.MRInvalidations != 1 || st.Reregistrations != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if gaps := tr.MissingPSNs(); len(gaps) != 8 {
		t.Fatalf("invalidation left %d replayable gaps, want 8", len(gaps))
	}
	tr.Replay(tr.MissingPSNs())
	cold, _ := tr.Drain(0)
	if len(cold) != 8 {
		t.Fatalf("drained %d, want all 8 replayed", len(cold))
	}
}

// TestTransportPromoteDemote: promotion publishes a MAT entry, demotion
// withdraws it, and the row table bounds promotions.
func TestTransportPromoteDemote(t *testing.T) {
	tr := healthyTransport(2, 3, 16)
	if !tr.Promote(fk(1)) || !tr.Promote(fk(2)) {
		t.Fatal("promotion within capacity failed")
	}
	if !tr.Promote(fk(1)) {
		t.Fatal("re-promotion of an installed key must succeed")
	}
	if tr.Promote(fk(3)) {
		t.Fatal("promotion beyond row capacity succeeded")
	}
	if tr.MATLen() != 2 || tr.HotRows() != 2 {
		t.Fatalf("MAT = %d rows = %d", tr.MATLen(), tr.HotRows())
	}
	tr.Demote(fk(1))
	if tr.MATLen() != 1 || tr.HotRows() != 1 {
		t.Fatal("demotion did not withdraw the entry")
	}
	if _, delivered := tr.Send(seqRec(1, 0, 9, 5)); !delivered {
		t.Fatal("demoted key must still send cold")
	}
}

// TestTransportHandoffPropertyRandomSchedules is the PSN-gap property
// test: over randomized fault schedules, the union of drained and
// fallback records carries every sent record's sequence number exactly
// once — the RDMA→packet handoff never double-counts or loses a record
// while the replay window covers the traffic.
func TestTransportHandoffPropertyRandomSchedules(t *testing.T) {
	meta := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 40; trial++ {
		sched := &faults.RDMASchedule{
			Seed:      meta.Uint64(),
			VerbError: meta.Float64() * 0.6,
			PSNDrop:   meta.Float64() * 0.6,
		}
		var shed int
		tr := NewTransport(TransportConfig{Rows: 8, Lanes: 3, BufCap: 1 << 10,
			Faults: sched, OnShed: func(sw uint64, n int) { shed += n }})
		hotKeys := meta.Intn(5)
		for k := 0; k < hotKeys; k++ {
			tr.Promote(fk(k))
		}
		n := 20 + meta.Intn(60)
		sent := map[uint32]bool{}
		fallback := map[uint32]bool{}
		// Each record gets a distinct key, as the deployment's Phase 1
		// enumeration guarantees per sub-window (hot keys overwrite
		// their lane, so duplicate keys would legitimately coalesce).
		for i := 0; i < n; i++ {
			rec := seqRec(i, 0, uint32(i), uint64(i+1))
			if i < hotKeys {
				tr.Promote(fk(i))
			}
			_, delivered := tr.Send(rec)
			sent[rec.Seq] = true
			if !delivered {
				// Mid-sub-window fallback: retries exhausted (QP now in
				// Error) — the packet path carries it from here on.
				fallback[rec.Seq] = true
			}
		}
		// Boundary: recover the QP if it faulted, then run the bounded
		// NACK/replay loop the deployment drives.
		tr.BeginCollect(0)
		for round := 0; round < 4; round++ {
			gaps := tr.MissingPSNs()
			if len(gaps) == 0 {
				break
			}
			tr.Replay(gaps)
		}
		for _, r := range tr.TakeUnapplied() {
			if fallback[r.Seq] {
				t.Fatalf("trial %d: seq %d handed to fallback twice", trial, r.Seq)
			}
			fallback[r.Seq] = true
		}
		cold, hot := tr.Drain(0)
		got := map[uint32]bool{}
		for _, r := range append(cold, hot...) {
			if got[r.Seq] {
				t.Fatalf("trial %d: seq %d drained twice", trial, r.Seq)
			}
			if fallback[r.Seq] {
				t.Fatalf("trial %d: seq %d both drained and fallen back", trial, r.Seq)
			}
			got[r.Seq] = true
		}
		for s := range fallback {
			got[s] = true
		}
		for s := range sent {
			if !got[s] {
				t.Fatalf("trial %d: seq %d lost across the handoff (sent %d, drained %d, fallback %d)",
					trial, s, n, len(cold)+len(hot), len(fallback))
			}
		}
		if len(got) != len(sent) {
			t.Fatalf("trial %d: delivered %d records, sent %d", trial, len(got), len(sent))
		}
		if shed != 0 || tr.Stats().Lost != 0 {
			t.Fatalf("trial %d: spurious loss: shed = %d lost = %d", trial, shed, tr.Stats().Lost)
		}
	}
}

// TestTransportSendZeroAllocs pins the steady-state send path at zero
// allocations per record, for both the hot-row write and the cold append.
func TestTransportSendZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is perturbed by the race detector")
	}
	tr := healthyTransport(4, 3, 1<<12)
	tr.Promote(fk(0))
	// Warm: grow the pending window and the hot-seq map once.
	for i := 0; i < 512; i++ {
		tr.Send(seqRec(i%2, 0, uint32(i), 1))
	}
	tr.Drain(0)
	hotRec := seqRec(0, 0, 1, 1)
	if got := testing.AllocsPerRun(256, func() { tr.Send(hotRec) }); got != 0 {
		t.Fatalf("hot send allocates %.1f allocs/op, want 0", got)
	}
	tr.Drain(0)
	coldRec := seqRec(1, 0, 2, 1)
	if got := testing.AllocsPerRun(256, func() { tr.Send(coldRec) }); got != 0 {
		t.Fatalf("cold send allocates %.1f allocs/op, want 0", got)
	}
}
