package rdma

import (
	"errors"
	"testing"

	"omniwindow/internal/afr"
	"omniwindow/internal/packet"
)

func fk(i int) packet.FlowKey { return packet.FlowKey{SrcIP: uint32(i), Proto: packet.ProtoTCP} }

func rec(key, sw, attr int) packet.AFR {
	return packet.AFR{Key: fk(key), SubWindow: uint64(sw), Attr: uint64(attr)}
}

func TestMemoryRegionRowAllocation(t *testing.T) {
	mr := NewMemoryRegion(2, 5, 10)
	b0, ok := mr.AllocRow()
	if !ok || b0 != 0 {
		t.Fatalf("first row = %d,%v", b0, ok)
	}
	b1, ok := mr.AllocRow()
	if !ok || b1 != 5 {
		t.Fatalf("second row = %d,%v", b1, ok)
	}
	if _, ok := mr.AllocRow(); ok {
		t.Fatal("allocation beyond capacity")
	}
	if mr.Lanes() != 5 {
		t.Fatalf("lanes = %d", mr.Lanes())
	}
}

func TestNICWriteAndFetchAdd(t *testing.T) {
	mr := NewMemoryRegion(2, 4, 10)
	nic := NewNIC(mr)
	base, _ := mr.AllocRow()
	if err := nic.Write(base+2, 42); err != nil {
		t.Fatal(err)
	}
	old, err := nic.FetchAdd(base+2, 8)
	if err != nil || old != 42 {
		t.Fatalf("fetch-add old = %d, %v", old, err)
	}
	row := mr.ReadRow(base)
	if row[2] != 50 {
		t.Fatalf("row = %v", row)
	}
	if nic.Writes != 1 || nic.FetchAdds != 1 {
		t.Fatalf("verb counts: %d writes %d fadds", nic.Writes, nic.FetchAdds)
	}
	if nic.PSN() != 2 {
		t.Fatalf("psn = %d", nic.PSN())
	}
	mr.ResetRow(base)
	if mr.ReadRow(base)[2] != 0 {
		t.Fatal("reset row kept value")
	}
}

func TestNICInvalidAddress(t *testing.T) {
	nic := NewNIC(NewMemoryRegion(1, 2, 4))
	if err := nic.Write(99, 1); err == nil {
		t.Fatal("invalid WRITE accepted")
	}
	if _, err := nic.FetchAdd(-1, 1); err == nil {
		t.Fatal("invalid FETCH_ADD accepted")
	}
}

func TestColdBufferAppendAndDrain(t *testing.T) {
	mr := NewMemoryRegion(1, 2, 3)
	nic := NewNIC(mr)
	for i := 0; i < 3; i++ {
		if err := nic.Append(rec(i, 0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := nic.Append(rec(9, 0, 9)); err != ErrBufferFull {
		t.Fatalf("overflow error = %v", err)
	}
	got := nic.Drain()
	if len(got) != 3 {
		t.Fatalf("drained %d", len(got))
	}
	// Drained buffer accepts appends again.
	if err := nic.Append(rec(9, 0, 9)); err != nil {
		t.Fatal(err)
	}
	// Drain result must not alias the live buffer.
	if got[0].Key != fk(0) {
		t.Fatalf("drain order wrong: %v", got[0].Key)
	}
}

func TestAddressMAT(t *testing.T) {
	m := NewAddressMAT(2)
	if !m.Insert(fk(1), 0) || !m.Insert(fk(2), 8) {
		t.Fatal("insert failed")
	}
	if m.Insert(fk(3), 16) {
		t.Fatal("capacity not enforced")
	}
	if !m.Insert(fk(1), 24) {
		t.Fatal("update of existing key refused")
	}
	if b, ok := m.Lookup(fk(1)); !ok || b != 24 {
		t.Fatalf("lookup = %d,%v", b, ok)
	}
	m.Delete(fk(1))
	if _, ok := m.Lookup(fk(1)); ok {
		t.Fatal("deleted key still present")
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
}

func TestCollectorHotFrequencyAggregatesOnNIC(t *testing.T) {
	mr := NewMemoryRegion(4, 5, 16)
	nic := NewNIC(mr)
	mat := NewAddressMAT(4)
	base, _ := mr.AllocRow()
	mat.Insert(fk(1), base)
	c := NewCollector(mat, nic)

	// Five sub-windows of a hot key: the RNIC must sum them with
	// Fetch-and-Add, zero controller CPU.
	for sw := 0; sw < 5; sw++ {
		hot, err := c.Send(rec(1, sw, 10), afr.Frequency)
		if err != nil || !hot {
			t.Fatalf("sw %d: hot=%v err=%v", sw, hot, err)
		}
	}
	if got := mr.ReadRow(base)[0]; got != 50 {
		t.Fatalf("aggregated = %d want 50", got)
	}
	if nic.FetchAdds != 5 || nic.Appends != 0 {
		t.Fatalf("verbs: %d fadds %d appends", nic.FetchAdds, nic.Appends)
	}
}

func TestCollectorHotNonFrequencyGroupsByLane(t *testing.T) {
	mr := NewMemoryRegion(4, 5, 16)
	nic := NewNIC(mr)
	mat := NewAddressMAT(4)
	base, _ := mr.AllocRow()
	mat.Insert(fk(1), base)
	c := NewCollector(mat, nic)
	for sw := 0; sw < 5; sw++ {
		if _, err := c.Send(rec(1, sw, sw+1), afr.Max); err != nil {
			t.Fatal(err)
		}
	}
	row := mr.ReadRow(base)
	for sw := 0; sw < 5; sw++ {
		if row[sw] != uint64(sw+1) {
			t.Fatalf("lane %d = %d", sw, row[sw])
		}
	}
}

func TestCollectorColdKeyAppends(t *testing.T) {
	mr := NewMemoryRegion(1, 2, 16)
	nic := NewNIC(mr)
	c := NewCollector(NewAddressMAT(1), nic)
	hot, err := c.Send(rec(7, 0, 3), afr.Frequency)
	if err != nil || hot {
		t.Fatalf("cold send: hot=%v err=%v", hot, err)
	}
	got := nic.Drain()
	if len(got) != 1 || got[0].Key != fk(7) {
		t.Fatalf("drained = %v", got)
	}
}

func TestConstructorValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMemoryRegion(0, 1, 1) },
		func() { NewMemoryRegion(1, 0, 1) },
		func() { NewMemoryRegion(1, 1, 0) },
		func() { NewAddressMAT(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestInjectedVerbFaults(t *testing.T) {
	mr := NewMemoryRegion(2, 4, 10)
	nic := NewNIC(mr)
	base, _ := mr.AllocRow()

	var ops []string
	fail := true
	nic.SetFaults(func(op string, addr int) error {
		ops = append(ops, op)
		if fail {
			return errors.New("injected")
		}
		return nil
	})

	psn := nic.PSN()
	if err := nic.Write(base, 7); err == nil {
		t.Fatal("faulted WRITE completed")
	}
	if _, err := nic.FetchAdd(base, 7); err == nil {
		t.Fatal("faulted FETCH_ADD completed")
	}
	if err := nic.Append(rec(1, 0, 7)); err == nil {
		t.Fatal("faulted APPEND completed")
	}
	// Failed verbs must not touch memory or the success counters, but the
	// requester-side PSN still advances (the request went on the wire).
	if mr.slots[base] != 0 || len(mr.buffer) != 0 {
		t.Fatal("failed verb mutated the memory region")
	}
	if nic.Writes != 0 || nic.FetchAdds != 0 || nic.Appends != 0 {
		t.Fatal("failed verb counted as completed")
	}
	if nic.Failures != 3 {
		t.Fatalf("Failures = %d, want 3", nic.Failures)
	}
	if nic.PSN() != psn+3 {
		t.Fatalf("PSN advanced by %d, want 3", nic.PSN()-psn)
	}
	if len(ops) != 3 || ops[0] != "write" || ops[1] != "fetch_add" || ops[2] != "append" {
		t.Fatalf("fault hook saw ops %v", ops)
	}

	// With the hook passing (and after clearing it), verbs work again.
	fail = false
	if err := nic.Write(base, 7); err != nil {
		t.Fatal(err)
	}
	nic.SetFaults(nil)
	if _, err := nic.FetchAdd(base, 3); err != nil {
		t.Fatal(err)
	}
	if mr.slots[base] != 10 {
		t.Fatalf("slot = %d, want 10", mr.slots[base])
	}
	if nic.Failures != 3 {
		t.Fatalf("Failures grew to %d", nic.Failures)
	}
}
