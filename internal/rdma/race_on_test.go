//go:build race

package rdma

// raceEnabled reports that this binary was built with -race; allocation
// accounting is perturbed by the detector's instrumentation, so the
// allocs/op pins skip themselves.
const raceEnabled = true
