package omniwindow

import (
	"fmt"
	"reflect"
	"testing"

	"omniwindow/internal/faults"
	"omniwindow/internal/pool"
)

// Differential property tests for the pooled hot path: buffer pooling,
// batched ingest and pre-sizing hints are performance mechanisms only —
// with identical seeds they must produce byte-identical WindowResults and
// identical (virtual-time) stats under every chaos schedule, with pooling
// on or off. A divergence here means a pooled buffer was read after
// release or a batch boundary leaked into the semantics.

// withPooling runs f with the pool globally forced on or off, restoring
// the enabled state (pooling is on by default) afterwards.
func withPooling(enabled bool, f func()) {
	pool.SetEnabled(enabled)
	defer pool.SetEnabled(true)
	f()
}

// TestChaosPoolingDifferential: pooling on vs off, and the ExpectedFlows
// pre-sizing hint, across the seeded drop/duplicate chaos schedules.
func TestChaosPoolingDifferential(t *testing.T) {
	schedules := []struct {
		name string
		cfg  *faults.Config
	}{
		{"lossless", nil},
		{"drop5/seed1", &faults.Config{Seed: 1, Drop: 0.05}},
		{"drop20+dup/seed1", &faults.Config{Seed: 1, Drop: 0.20, Duplicate: 0.20, MaxDuplicates: 2}},
		{"dup-only/seed2", &faults.Config{Seed: 2, Duplicate: 0.5, MaxDuplicates: 3}},
	}
	variants := []struct {
		name   string
		pooled bool
		mutate func(*Config)
	}{
		{"unpooled", false, nil},
		{"pooled+hint", true, func(c *Config) { c.ExpectedFlows = 64 }},
		{"pooled+bighint", true, func(c *Config) { c.ExpectedFlows = 1 << 14 }},
	}
	for _, sched := range schedules {
		t.Run(sched.name, func(t *testing.T) {
			run := func(pooled bool, mutate func(*Config)) *Deployment {
				var d *Deployment
				withPooling(pooled, func() {
					d = runChaos(t, func(c *Config) {
						if sched.cfg != nil {
							c.AFRFaults = faults.New(*sched.cfg)
						}
						if mutate != nil {
							mutate(c)
						}
					})
				})
				return d
			}
			base := run(true, nil)
			if len(base.Results()) == 0 {
				t.Fatal("pooled baseline produced no windows")
			}
			for _, v := range variants {
				d := run(v.pooled, v.mutate)
				if !reflect.DeepEqual(base.Results(), d.Results()) {
					t.Fatalf("%s results diverged from pooled baseline:\npooled: %+v\n%s: %+v",
						v.name, base.Results(), v.name, d.Results())
				}
				if base.Stats() != d.Stats() {
					t.Fatalf("%s stats diverged from pooled baseline:\npooled: %+v\n%s: %+v",
						v.name, base.Stats(), v.name, d.Stats())
				}
			}
		})
	}
}

// TestChaosPoolingDifferentialCrashRestart: the durability path (WAL
// encode scratch, checkpoint scratch, replay through the batched ingest)
// must also be pooling-invariant — crash at a boundary, restart, and the
// stitched window sequence matches the pooled uncrashed baseline whether
// the restarted run pools or not.
func TestChaosPoolingDifferentialCrashRestart(t *testing.T) {
	baseline := runChaos(t, nil)
	if len(baseline.Results()) == 0 {
		t.Fatal("baseline produced no windows")
	}
	for _, pooled := range []bool{true, false} {
		for _, at := range []uint64{1, 3} {
			t.Run(fmt.Sprintf("pooled=%v/boundary%d", pooled, at), func(t *testing.T) {
				var combined []WindowResult
				withPooling(pooled, func() {
					combined, _ = crashAndRestart(t, t.TempDir(), 2, at)
				})
				if !reflect.DeepEqual(baseline.Results(), combined) {
					t.Fatalf("pooled=%v crash at %d not exactly recovered:\nuncrashed: %+v\nstitched:  %+v",
						pooled, at, baseline.Results(), combined)
				}
			})
		}
	}
}

// TestChaosPoolingDebugLeakFree runs a full faulted deployment under the
// pool's debug tracking: every pooled buffer the run takes out must be
// back in the free lists when the deployment finishes — the ownership
// rules hold end to end, not just in unit tests.
func TestChaosPoolingDebugLeakFree(t *testing.T) {
	pool.SetDebug(true)
	defer pool.SetDebug(false)
	d := runChaos(t, func(c *Config) {
		c.AFRFaults = faults.New(faults.Config{Seed: 3, Drop: 0.10, Duplicate: 0.10, MaxDuplicates: 2})
	})
	if len(d.Results()) == 0 {
		t.Fatal("run produced no windows")
	}
	// Long-lived scratch (decode packets, shard pending for still-open
	// sub-windows) legitimately stays out; what must not happen is
	// unbounded growth. Bound outstanding by a generous constant rather
	// than pinning zero.
	if n := pool.Outstanding(); n > 256 {
		t.Fatalf("%d pooled buffers still outstanding after the run — leak", n)
	}
}
