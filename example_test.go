package omniwindow_test

import (
	"fmt"
	"time"

	"omniwindow"
	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
	"omniwindow/internal/telemetry"
)

// Example deploys a tumbling-window heavy-hitter monitor and feeds it a
// hand-built burst that crosses a sub-window boundary: the merged window
// reports the flow even though neither sub-window alone is above
// threshold (the paper's §4.1 motivating case).
func Example() {
	d, err := omniwindow.New(omniwindow.Config{
		SubWindow: 100 * time.Millisecond,
		Plan:      omniwindow.Tumbling(5), // 500 ms windows of five sub-windows
		Kind:      omniwindow.Frequency,
		Threshold: 100,
		AppFactory: func(region int) omniwindow.StateApp {
			return telemetry.NewFrequencyApp(sketch.NewCountMin(4, 1024, uint64(region+1)), 1024)
		},
		Slots:         1024,
		CaptureValues: true,
	})
	if err != nil {
		panic(err)
	}

	flow := packet.FlowKey{SrcIP: 0x0A000001, DstIP: 0x0A000002, SrcPort: 1234, DstPort: 80, Proto: packet.ProtoTCP}
	emit := func(at int64, n int) {
		for i := 0; i < n; i++ {
			d.ProcessPacket(&packet.Packet{Key: flow, Size: 100, Time: at + int64(i)*1000})
		}
	}
	emit(50_000_000, 60)  // 60 packets in sub-window 0
	emit(150_000_000, 80) // 80 packets in sub-window 1

	for _, w := range d.RunFor(nil, 500_000_000) {
		fmt.Printf("window [%d..%d]: flow count %d, detected %d\n",
			w.Start, w.End, w.Values[flow], len(w.Detected))
	}
	// Output:
	// window [0..4]: flow count 140, detected 1
}
