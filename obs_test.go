package omniwindow

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"omniwindow/internal/obs"
	"omniwindow/internal/window"
)

// scrapeMetrics fetches and parses a /metrics endpoint into name→value,
// validating the exposition is well-formed enough for a Prometheus
// scraper (one value per line, parseable floats).
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	values := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		values[line[:sp]] = v
	}
	return values
}

// TestDebugEndpointReflectsRun runs a deployment with the observability
// endpoint enabled, scrapes /metrics, and reconciles the scraped counters
// against the run's Stats — the endpoint is consumed and validated, not
// just served.
func TestDebugEndpointReflectsRun(t *testing.T) {
	cfg := freqConfig(window.Tumbling(2), 5, false)
	cfg.DebugAddr = "127.0.0.1:0"
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.CloseDebug()

	pkts := burstTrace(map[int64][]int{
		100 * ms: {1, 2, 3},
		300 * ms: {1, 2},
	}, 20)
	d.RunFor(pkts, 500*ms)
	stats := d.Stats()
	if stats.AFRs == 0 || len(d.Results()) == 0 {
		t.Fatalf("run produced no data: %+v", stats)
	}

	values := scrapeMetrics(t, d.DebugURL())
	checks := map[string]int{
		"omniwindow_switch_packets_total":     stats.Packets,
		"omniwindow_cr_afrs_total":            stats.AFRs,
		"omniwindow_controller_windows_total": len(d.Results()),
		"omniwindow_cr_collect_seconds_count": stats.SubWindows,
	}
	for name, want := range checks {
		if got := values[name]; got != float64(want) {
			t.Errorf("%s = %v, want %d", name, got, want)
		}
	}
	// The controller admitted at least every collected AFR (spikes and
	// spills ride other counters).
	if got := values["omniwindow_controller_afrs_total"]; got < float64(stats.AFRs) {
		t.Errorf("controller afrs %v < collected %d", got, stats.AFRs)
	}
	// The C&R latency histogram carries a usable quantile.
	if values["omniwindow_cr_collect_seconds_sum"] <= 0 {
		t.Error("C&R histogram sum is zero")
	}

	// /debug/windows shows the full lifecycle: announced → collected →
	// finished → window emitted.
	resp, err := http.Get(d.DebugURL() + "/debug/windows")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump struct {
		Total  uint64 `json:"total_events"`
		Events []struct {
			Stage     string `json:"stage"`
			SubWindow uint64 `json:"sub_window"`
		} `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("/debug/windows: %v", err)
	}
	seen := make(map[string]bool)
	for _, e := range dump.Events {
		seen[e.Stage] = true
	}
	for _, stage := range []string{"announced", "collected", "finished", "window_emitted"} {
		if !seen[stage] {
			t.Errorf("trace ring missing stage %q (saw %v)", stage, seen)
		}
	}

	// pprof rides along on the same endpoint.
	pr, err := http.Get(d.DebugURL() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d", pr.StatusCode)
	}

	if err := d.CloseDebug(); err != nil {
		t.Fatalf("CloseDebug: %v", err)
	}
	if err := d.CloseDebug(); err != nil {
		t.Fatalf("second CloseDebug: %v", err)
	}
}

// TestObsRegistryWithoutEndpoint: Config.Obs alone instruments the
// deployment into a caller-owned registry with embedded labels, no HTTP.
func TestObsRegistryWithoutEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := freqConfig(window.Tumbling(2), 5, false)
	cfg.Obs = reg
	cfg.ObsLabels = `switch="7"`
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.DebugURL() != "" {
		t.Fatal("no DebugAddr configured but an endpoint is running")
	}
	d.RunFor(burstTrace(map[int64][]int{100 * ms: {1, 2}}, 10), 300*ms)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `omniwindow_switch_packets_total{switch="7"} 20`) {
		t.Fatalf("labeled packet counter missing from exposition:\n%s", text)
	}
	if d.Obs() != reg {
		t.Fatal("deployment did not adopt the supplied registry")
	}
}

// TestUninstrumentedDeploymentHasNoObs: without Obs/DebugAddr the
// deployment carries nil handles end to end and the accessors are safe.
func TestUninstrumentedDeploymentHasNoObs(t *testing.T) {
	d, err := New(freqConfig(window.Tumbling(2), 5, false))
	if err != nil {
		t.Fatal(err)
	}
	if d.Obs() != nil || d.DebugURL() != "" {
		t.Fatal("uninstrumented deployment exposes observability state")
	}
	d.RunFor(burstTrace(map[int64][]int{100 * ms: {1}}, 5), 300*ms)
	if err := d.CloseDebug(); err != nil {
		t.Fatalf("CloseDebug on uninstrumented deployment: %v", err)
	}
}
