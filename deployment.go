package omniwindow

import (
	"fmt"
	"time"

	"omniwindow/internal/controller"
	"omniwindow/internal/obs"
	"omniwindow/internal/packet"
	"omniwindow/internal/rdma"
	"omniwindow/internal/switchsim"
)

// deployResources compiles the OmniWindow data-plane program onto the
// simulated switch with per-feature attribution, mirroring the Exp#5
// resource breakdown (Table 2). Sizes come from the configuration; stages
// come from the placement solver, driven by the program's real dependency
// structure: the signal decides the sub-window, the consistency model
// stamps it, the address MAT derives the region offset, flowkey tracking
// and the application state consume it, and AFR generation / reset sit
// behind the tracking structures they enumerate.
func (d *Deployment) deployResources() error {
	t := d.cfg.Tracker
	spec := switchsim.ProgramSpec{
		Registers: []switchsim.RegSpec{
			{Name: "subwindow_num", Feature: "Signal", Entries: 1, Width: 4},
			{Name: "signal_state", Feature: "Signal", Entries: 4096, Width: 8},
		},
		MATs: []switchsim.MATSpec{
			{Name: "signal_gate", Feature: "Signal", VLIWs: 3, Gateways: 2, After: []string{"signal_state"}},
			{Name: "stamp_adopt", Feature: "Consistency model", VLIWs: 2, Gateways: 1,
				After: []string{"subwindow_num"}},
			{Name: "region_offset", Feature: "Address location", SRAMKB: 16, VLIWs: 2,
				After: []string{"stamp_adopt"}},
			{Name: "fk_track_gate", Feature: "Flowkey tracking", SRAMKB: 4, VLIWs: 7, Gateways: 7,
				After: []string{"region_offset"}},
			{Name: "afr_gen", Feature: "AFR generation", VLIWs: 4, Gateways: 3,
				After: []string{"fk_buffer_r0", "fk_buffer_r1"}},
		},
	}
	// Flowkey tracking: fk_buffer plus a k-hash Bloom filter, per region
	// (Algorithm 1). The Bloom rows depend on the tracking gate; the
	// buffers depend on the Bloom verdict.
	for r := 0; r < 2; r++ {
		var bloomNames []string
		for h := 0; h < t.BloomHashes; h++ {
			name := fmt.Sprintf("bloom_r%d_h%d", r, h)
			bloomNames = append(bloomNames, name)
			spec.Registers = append(spec.Registers, switchsim.RegSpec{
				Name: name, Feature: "Flowkey tracking",
				Entries: maxInt(t.BloomBits/64, 1), Width: 8,
				After: []string{"fk_track_gate"},
			})
		}
		spec.Registers = append(spec.Registers, switchsim.RegSpec{
			Name: fmt.Sprintf("fk_buffer_r%d", r), Feature: "Flowkey tracking",
			Entries: maxInt(t.BufferKeys, 1), Width: packet.KeyBytes,
			After: bloomNames,
		})
	}
	// The application's flat register holds both regions concatenated:
	// one SALU regardless of region count (the §6 optimization).
	spec.Registers = append(spec.Registers, switchsim.RegSpec{
		Name: "app_flat", Feature: "App state", Entries: 2 * d.cfg.Slots, Width: 8,
		After: []string{"region_offset"},
	})
	// In-switch reset enumerates the application registers.
	spec.Registers = append(spec.Registers, switchsim.RegSpec{
		Name: "reset_counter", Feature: "In-switch reset", Entries: 1, Width: 4,
	})
	spec.MATs = append(spec.MATs, switchsim.MATSpec{
		Name: "reset_gate", Feature: "In-switch reset", SRAMKB: 28, VLIWs: 5, Gateways: 5,
		After: []string{"reset_counter", "app_flat"},
	})
	if d.cfg.RDMA {
		matKB := (d.cfg.AddressMATSize*24 + 1023) / 1024
		spec.MATs = append(spec.MATs, switchsim.MATSpec{
			Name: "address_mat", Feature: "RDMA opt.", SRAMKB: matKB, VLIWs: 12, Gateways: 8,
			After: []string{"afr_gen"},
		})
		spec.Registers = append(spec.Registers, switchsim.RegSpec{
			Name: "roce_psn", Feature: "RDMA opt.", Entries: 1, Width: 4,
			After: []string{"address_mat"},
		})
		spec.MATs = append(spec.MATs, switchsim.MATSpec{
			Name: "roce_craft", Feature: "RDMA opt.", SRAMKB: 8, VLIWs: 8, Gateways: 5,
			After: []string{"roce_psn"},
		})
	}
	_, err := switchsim.Place(d.sw, spec)
	return err
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// installProgram wires the per-packet pipeline logic.
func (d *Deployment) installProgram() {
	d.sw.SetProgram(func(pass *switchsim.Pass) {
		p := pass.Pkt
		if d.engine.HandleSpecial(pass) {
			return
		}
		res := d.manager.OnPacket(p, p.Time)
		if d.decisionHook != nil {
			d.decisionHook(p, res)
		}
		if res.StaleEpoch {
			// Stamped by a rebooted, not-yet-resynced switch: the embedded
			// sub-window is garbage. The packet still forwards (it is user
			// traffic) but is never monitored here.
			d.stats.StaleEpochStamps++
			d.obs.staleEpoch.Inc()
			return
		}
		for _, ended := range res.Terminated {
			trig := p.Clone()
			trig.OW.Flag = packet.OWTrigger
			trig.OW.SubWindow = ended
			trig.OW.KeyCount = uint32(d.engine.Tracker().KeyCount(d.manager.Regions().Index(ended)))
			pass.CloneToController(trig)
		}
		if res.Spike {
			c := p.Clone()
			c.OW.Flag = packet.OWLatencySpike
			pass.CloneToController(c)
			return
		}
		if !d.regionOwned[res.Region] || d.regionOwner[res.Region] < res.Monitor {
			d.regionOwner[res.Region] = res.Monitor
			d.regionOwned[res.Region] = true
		}
		if spillKey, spill := d.engine.Update(res.Region, p); spill {
			c := p.Clone()
			c.OW.Flag = packet.OWSpill
			c.OW.Key = spillKey
			pass.CloneToController(c)
		}
	})
}

// ProcessPacket feeds one traffic packet (in non-decreasing time order)
// through the deployment. Completed windows accumulate in Results. The
// packet is copied before entering the pipeline: the first-hop stamp this
// deployment writes must not leak into the caller's trace (which may be
// replayed through other deployments).
func (d *Deployment) ProcessPacket(p *packet.Packet) {
	if d.crashed {
		return
	}
	d.now = p.Time
	d.runDueCollections()
	if d.crashed {
		return
	}
	q := *p
	out := d.sw.Inject(&q)
	d.stats.Packets++
	d.obs.packets.Inc()
	d.handleSwitchOutput(out)
}

// ProcessAndForward feeds one packet through the deployment and returns
// the packets leaving on egress — carrying this switch's sub-window stamp,
// ready to be fed into a downstream deployment (the network-wide mode of
// §5: the first hop stamps, later hops adopt).
func (d *Deployment) ProcessAndForward(p *packet.Packet) []*packet.Packet {
	if d.crashed {
		return nil
	}
	d.now = p.Time
	d.runDueCollections()
	if d.crashed {
		return nil
	}
	q := *p
	out := d.sw.Inject(&q)
	d.stats.Packets++
	d.obs.packets.Inc()
	d.handleSwitchOutput(out)
	return out.Forward
}

// Tick advances virtual time without traffic, firing timeout signals and
// due collections (the periodically generated timeout signals of §5).
func (d *Deployment) Tick(now int64) {
	if d.crashed {
		return
	}
	d.now = now
	d.runDueCollections()
	if d.crashed {
		return
	}
	for _, ended := range d.manager.Tick(now) {
		d.sendTrigger(ended)
		d.onTerminated(ended)
	}
	d.runDueCollections()
}

// sendTrigger delivers the sub-window-terminated announcement the data
// plane would clone to the controller (sub-window number + tracked key
// count, for AFR-loss detection).
func (d *Deployment) sendTrigger(ended uint64) {
	region := d.manager.Regions().Index(ended)
	kc := 0
	if d.regionOwned[region] && d.regionOwner[region] == ended {
		kc = d.engine.Tracker().KeyCount(region)
	}
	trig := &packet.Packet{OW: packet.OWHeader{
		Flag: packet.OWTrigger, SubWindow: ended, KeyCount: uint32(kc),
	}}
	d.logTrigger(ended, uint32(kc))
	for _, c := range d.ctrls {
		c.Receive(trig)
	}
}

// Run processes a whole trace and finalizes the trailing sub-window.
func (d *Deployment) Run(pkts []packet.Packet) []controller.WindowResult {
	for i := range pkts {
		d.ProcessPacket(&pkts[i])
	}
	d.Finalize()
	return d.results
}

// RunFor processes a trace and then advances the clock to duration, so
// that every time-based sub-window within [0, duration) terminates and is
// collected — the natural finish for timeout-signal deployments whose
// trace has a known length.
func (d *Deployment) RunFor(pkts []packet.Packet, duration int64) []controller.WindowResult {
	for i := range pkts {
		d.ProcessPacket(&pkts[i])
	}
	d.Tick(duration)
	d.now += 1 << 40 // move past every grace deadline
	d.runDueCollections()
	return d.results
}

// Finalize terminates the active sub-window and flushes every pending
// collection.
func (d *Deployment) Finalize() {
	if d.crashed {
		return
	}
	ended := d.manager.ForceTerminate()
	d.sendTrigger(ended)
	d.onTerminated(ended)
	d.now += 1 << 40 // move past every grace deadline
	d.runDueCollections()
}

// handleSwitchOutput routes switch-to-controller packets.
func (d *Deployment) handleSwitchOutput(out switchsim.Output) {
	for _, c := range out.ToController {
		switch c.OW.Flag {
		case packet.OWTrigger:
			d.logTrigger(c.OW.SubWindow, c.OW.KeyCount)
			for _, ctrl := range d.ctrls {
				ctrl.Receive(c)
			}
			d.onTerminated(c.OW.SubWindow)
		case packet.OWSpill:
			d.stats.Spills++
			d.obs.spills.Inc()
			d.spilled[c.OW.SubWindow] = append(d.spilled[c.OW.SubWindow], c.OW.Key)
		case packet.OWLatencySpike:
			d.stats.Spikes++
			d.obs.spikes.Inc()
			d.ingestSpike(c)
		case packet.OWAFR:
			d.deliverAFRs(c)
		}
	}
}

// ingestSpike merges one latency-spike copy through the controller's
// software path (§5): the stamped sub-window is no longer preserved in any
// data-plane region, so the controller folds the packet's contribution in
// directly. The application's flowkey definition still applies — a packet
// the query's filter would have skipped is skipped here too.
func (d *Deployment) ingestSpike(c *packet.Packet) {
	if d.cfg.KeyOf != nil {
		k, ok := d.cfg.KeyOf(c)
		if !ok {
			return
		}
		c = c.Clone()
		c.Key = k
	}
	for i, ctrl := range d.ctrls {
		attr := uint64(1)
		if d.apps[i].SpikeAttr != nil {
			attr = d.apps[i].SpikeAttr(c)
		}
		if ctrl.IngestSpike(c, attr) && i == 0 {
			d.stats.SpikesMerged++
		}
	}
}

// onTerminated schedules a terminated sub-window's C&R after the grace
// period.
func (d *Deployment) onTerminated(sw uint64) {
	d.pending = append(d.pending, pendingCR{sw: sw, due: d.now + int64(d.cfg.Grace)})
}

// runDueCollections performs C&R for every pending sub-window whose grace
// period has elapsed.
func (d *Deployment) runDueCollections() {
	for !d.crashed && len(d.pending) > 0 && d.pending[0].due <= d.now {
		cr := d.pending[0]
		d.pending = d.pending[1:]
		// The boundary-anchored timestamp: probes that model an observer
		// AT the boundary (the standby's lease check) read this instead of
		// d.now, which test harnesses may have jumped far ahead to flush
		// trailing collections.
		d.collectAt = cr.due
		d.collect(cr.sw)
	}
}

// collect runs the full C&R round for one sub-window: collection-packet
// enumeration (Algorithm 2), controller-injected spilled keys, the
// reliability check, in-switch reset, and controller window assembly.
func (d *Deployment) collect(sw uint64) {
	costs := d.cfg.Costs
	// An async QP error scheduled for this boundary strikes before the
	// collection traffic: every send below then falls back to the packet
	// path mid-sub-window, seamlessly.
	if d.cfg.RDMA {
		d.rdma.BeginBoundary(sw)
	}
	region := d.manager.Regions().Index(sw)
	// A region only holds the state of the newest sub-window that used
	// it. Stale terminations (idle gaps longer than the region count)
	// have nothing to collect — and must not reset a region now owned by
	// a newer sub-window.
	owned := d.regionOwned[region] && d.regionOwner[region] == sw

	// Crash-restart gap: when recovery's durable record ended before this
	// sub-window and no traffic for it ever reached this incarnation, it
	// cannot be proven empty — charge it Missing so its windows assemble
	// Incomplete (damage, never silently partial). The first owned
	// sub-window closes the gap: from there on, idle sub-windows really
	// are empty, witnessed live.
	if d.unattested {
		if owned {
			d.unattested = false
		} else if sw >= d.unattestedFrom {
			d.ctrl.NoteLost(sw, 1)
		}
	}

	var afrs int
	virtual := d.cfg.Grace

	if owned {
		d.engine.BeginCollection(sw)
		keyCount := d.engine.Tracker().KeyCount(region)

		// Phase 1 — enumeration: inject the collection packets; each
		// recirculates, emitting one AFR per pass, until the flowkey
		// array is exhausted.
		passes := 0
		for i := 0; i < d.cfg.CollectionPackets; i++ {
			out := d.sw.Inject(&packet.Packet{OW: packet.OWHeader{Flag: packet.OWCollection}})
			passes += out.Passes
			for _, c := range out.ToController {
				if c.OW.Flag == packet.OWAFR {
					afrs += len(c.OW.AFRs)
					d.deliverAFRs(c)
				}
			}
		}
		virtual += costs.RecircTime(d.cfg.CollectionPackets, keyCount)

		// Phase 2 — controller-injected flow keys for the spilled
		// remainder (§4.2), queried while the region still holds state.
		spilled := d.spilled[sw]
		delete(d.spilled, sw)
		seq := uint32(keyCount)
		for _, k := range spilled {
			inj := &packet.Packet{OW: packet.OWHeader{Flag: packet.OWInjectKey, Key: k, Index: seq, SubWindow: sw}}
			seq++
			out := d.sw.Inject(inj)
			for _, c := range out.ToController {
				if c.OW.Flag == packet.OWAFR {
					afrs += len(c.OW.AFRs)
					d.deliverAFRs(c)
				}
			}
		}
		virtual += time.Duration(len(spilled)) * costs.DPDKInjectPerKey

		// Failover probe: the standby declares the primary dead only once
		// its lease lapses (the wait is charged to the C&R budget), then
		// promotes from the checkpoint it tailed at the previous boundary.
		// Everything delivered for THIS sub-window above went to the dead
		// primary and is gone; the re-sent trigger re-announces the key
		// count, and the Phase-3 loop below NACKs the whole gap back from
		// the still-unreset region — at most one sub-window of loss,
		// fully NACK-recoverable.
		if d.standby != nil && !d.failedOver && d.cfg.Crash != nil && d.cfg.Crash.At(sw) {
			virtual += d.failover(sw)
		}

		// Partition probe: the standby's lease observation may declare the
		// still-live primary dead (lost/gray renewals, clock drift) and
		// promote behind a fencing term. Runs before Phase 3 so the NACK
		// loop below recovers this sub-window into the promoted controller.
		virtual += d.partitionProbe(sw)

		// Phase 3 — reliability: recover AFRs lost on the way (§8),
		// before the reset destroys the state they are queried from.
		// The controller NACKs the sequence gaps; the switch re-queries
		// and retransmits; bounded retries with exponential backoff
		// (charged to the C&R virtual-time budget) keep an unrecoverable
		// loss from stalling the reset forever — the sub-window then
		// finalizes with its gaps recorded and its windows Incomplete.
		// The RDMA path runs its own recovery at drain time below: PSN
		// gaps are NACKed into the transport's replay window instead of
		// re-queried from the switch.
		if !d.cfg.RDMA {
			rec := controller.RecoverSubWindow(d.retryPolicy(),
				func() []uint32 { return d.ctrl.MissingSeqs(sw) },
				func(seqs []uint32) error {
					for _, rp := range d.engine.RetransmitPackets(seqs) {
						d.stats.Retransmitted += len(rp.OW.AFRs)
						d.obs.retrans.Add(int64(len(rp.OW.AFRs)))
						d.deliverAFRs(rp)
					}
					return nil
				},
				func(wait time.Duration) { virtual += wait },
			)
			d.stats.RecoveryRounds += rec.Rounds
			if rec.Rounds > 0 {
				d.obs.ring.Record(obs.StageRecovered, sw, -1, int64(rec.Rounds))
			}
			if !rec.Complete && len(rec.Missing) > 0 {
				d.stats.IncompleteSubWindows++
			}
		}

		// Phase 4 — in-switch reset: the parked collection packets are
		// reused as clear packets (§4.3), each zeroing one slot of every
		// register per pass.
		for i := 0; i < d.cfg.CollectionPackets; i++ {
			out := d.sw.Inject(&packet.Packet{OW: packet.OWHeader{Flag: packet.OWReset}})
			passes += out.Passes
		}
		d.stats.RecircPasses += passes
		virtual += costs.RecircTime(d.cfg.CollectionPackets, d.cfg.Slots)

		d.regionOwned[region] = false
	}

	if !owned {
		// Idle boundaries probe too: the lease lapses on virtual time, not
		// on traffic, so a partition spanning an idle stretch must still
		// promote the standby (nothing is in flight; the re-sent trigger
		// announces an empty key count).
		virtual += d.partitionProbe(sw)
	}

	// RDMA mode: the boundary recovery step. Scheduled region
	// invalidations strike, a faulted QP attempts recovery, the
	// controller-side PSN-gap scan NACKs dropped verbs into the bounded
	// replay loop (the same virtual-time retry/backoff machinery as the
	// packet path's Phase 3), gaps the budget cannot close hand off to
	// the packet path, and the drain delivers the cold buffer plus the
	// hot-row readback — zeroing each consumed lane for its next
	// same-lane sub-window.
	if d.cfg.RDMA {
		d.rdma.BeginCollect(sw)
		if d.rdma.State() == rdma.QPRecovering {
			d.obs.ring.Record(obs.StageQPRecovered, sw, -1, 0)
		}
		if d.rdma.State() != rdma.QPError {
			rec := controller.RecoverSubWindow(d.retryPolicy(),
				d.rdma.MissingPSNs,
				func(psns []uint32) error {
					d.stats.RDMAReplayed += d.rdma.Replay(psns)
					return nil
				},
				func(wait time.Duration) { virtual += wait },
			)
			d.stats.RecoveryRounds += rec.Rounds
			if rec.Rounds > 0 {
				d.obs.ring.Record(obs.StageRecovered, sw, -1, int64(rec.Rounds))
			}
			if !rec.Complete && len(rec.Missing) > 0 {
				d.stats.IncompleteSubWindows++
			}
		}
		// Per-key handoff: whatever the replay budget could not land on
		// the region rides the packet path instead, original sequence
		// numbers intact — the controller's dedup makes the transport
		// switch exact (nothing double-counted, nothing lost).
		if fb := d.rdma.TakeUnapplied(); len(fb) > 0 {
			d.stats.FallbackAFRs += len(fb)
			d.obs.ring.Record(obs.StageRDMAFallback, sw, -1, int64(len(fb)))
			d.rdmaIngest(fb)
			d.stats.ControllerCPUVirtual += time.Duration(len(fb)) * costs.DPDKRxPerPacket
		}
		cold, hotRecs := d.rdma.Drain(sw)
		d.rdmaIngest(cold)
		d.rdmaIngest(hotRecs)
		d.stats.ControllerCPUVirtual += time.Duration(len(cold)) * costs.DPDKRxPerPacket
		virtual += d.rdma.TakeRetryWait()
	} else {
		d.stats.ControllerCPUVirtual += time.Duration(afrs) * costs.DPDKRxPerPacket
	}

	d.stats.AFRs += afrs
	d.stats.SubWindows++
	d.stats.CollectVirtual += virtual
	if virtual > d.stats.MaxCollectVirtual {
		d.stats.MaxCollectVirtual = virtual
	}
	d.obs.afrs.Add(int64(afrs))
	d.obs.collect.Observe(virtual)
	if owned {
		d.obs.ring.Record(obs.StageCollected, sw, region, int64(afrs))
	}

	var windows []controller.WindowResult
	for i, ctrl := range d.ctrls {
		w := ctrl.FinishSubWindow(sw)
		d.appResults[i] = append(d.appResults[i], w...)
		if i == 0 {
			windows = w
		}
	}
	d.results = d.appResults[0]
	// Durability: log the finish (replay re-runs the assembly at the same
	// point in the ingest order), checkpoint if this is a checkpoint
	// boundary, renew the liveness lease — then die here if the crash
	// schedule says so, leaving exactly the on-disk state a real
	// mid-operation power cut would.
	d.logFinish(sw)
	if d.store != nil {
		// Disk retry backoffs and injected slow-IO latency accrued since
		// the last boundary, charged as virtual time to the run's C&R
		// total. Deliberately NOT folded into MaxCollectVirtual: the §6
		// two-region feasibility bound is about switch-side region reuse,
		// and controller-side disk stalls overlap the next sub-window's
		// traffic instead of holding a region hostage.
		d.stats.CollectVirtual += time.Duration(d.store.TakeIOWait())
	}
	d.renewLease(sw)
	d.maintainPartition(sw)
	d.crashIfScheduled(sw)

	// RDMA: age key hotness once per completed window, demoting keys
	// that stopped recurring.
	if d.cfg.RDMA && len(windows) > 0 {
		for _, k := range d.hot.Decay() {
			d.rdma.Demote(k)
		}
	}
}

// rdmaIngest hands RDMA-delivered (or fallen-back) records to the
// controller, logging them to the WAL first when durability is on — the
// RDMA path's records become durable at controller-ingest time, exactly
// when the controller's state starts reflecting them.
func (d *Deployment) rdmaIngest(recs []packet.AFR) {
	if len(recs) == 0 {
		return
	}
	if d.store != nil {
		d.logBatch(&packet.Packet{OW: packet.OWHeader{Flag: packet.OWAFR, AFRs: recs}})
	}
	d.ctrl.IngestAFRs(recs)
}

// retryPolicy resolves the configured reliability knobs against the
// controller defaults. A negative RetryLimit disables recovery.
func (d *Deployment) retryPolicy() controller.RetryPolicy {
	pol := controller.DefaultRetryPolicy()
	switch {
	case d.cfg.RetryLimit < 0:
		pol.MaxRetries = 0
	case d.cfg.RetryLimit > 0:
		pol.MaxRetries = d.cfg.RetryLimit
	}
	if d.cfg.RetryBackoff > 0 {
		pol.Backoff = d.cfg.RetryBackoff
	}
	if d.cfg.RetryMaxBackoff > 0 {
		pol.MaxBackoff = d.cfg.RetryMaxBackoff
	}
	return pol
}

// deliverAFRs routes AFR-bearing packets (first transmissions and
// retransmissions) toward the controller, first pushing them through the
// configured fault schedule: a drop loses the packet — the reliability
// protocol must notice and repair — and duplicates arrive back to back,
// which the controller's sequence dedup must suppress.
func (d *Deployment) deliverAFRs(c *packet.Packet) {
	if d.testAFRLoss != nil {
		i := d.afrPktCount
		d.afrPktCount++
		if d.testAFRLoss(i) {
			return // injected loss: cloned packets have lowest priority
		}
	}
	if d.cfg.AFRFaults != nil {
		act := d.cfg.AFRFaults.Packet()
		if act.Drop {
			return
		}
		for i := 0; i < act.Duplicates; i++ {
			d.deliverAFRsOnce(c.Clone())
		}
	}
	d.deliverAFRsOnce(c)
}

// deliverAFRsOnce hands one surviving packet to the controller — via the
// RNIC when RDMA is enabled, via DPDK packet RX otherwise.
func (d *Deployment) deliverAFRsOnce(c *packet.Packet) {
	if !d.cfg.RDMA {
		d.logBatch(c)
		if len(d.ctrls) == 1 {
			d.ctrl.Receive(c)
			return
		}
		d.ingestByApp(c.OW.AFRs)
		return
	}
	for _, r := range c.OW.AFRs {
		if d.hot.Observe(r.Key) {
			d.rdma.Promote(r.Key)
		}
		hot, delivered := d.rdma.Send(r)
		if !delivered {
			// Seamless mid-sub-window fallback: the transport could not
			// take the record (QP down, retries exhausted, or the cold
			// buffer overflowed) — the packet path carries it from here,
			// original sequence number intact, so the controller's dedup
			// keeps the handoff exact.
			d.stats.FallbackAFRs++
			d.rdmaIngest([]packet.AFR{r})
			continue
		}
		if hot {
			d.stats.HotAFRs++
		} else {
			d.stats.ColdAFRs++
		}
	}
}

// ingestByApp routes records to their app's controller, batched per app
// so each controller sees one IngestAFRs call per delivered packet
// instead of one per record. The staging slices are deployment-held
// scratch, reused across packets.
func (d *Deployment) ingestByApp(recs []packet.AFR) {
	if d.appParts == nil {
		d.appParts = make([][]packet.AFR, len(d.ctrls))
	}
	for _, r := range recs {
		if int(r.App) < len(d.ctrls) {
			d.appParts[r.App] = append(d.appParts[r.App], r)
		}
	}
	for app, part := range d.appParts {
		if len(part) == 0 {
			continue
		}
		d.ctrls[app].IngestAFRs(part)
		d.appParts[app] = part[:0]
	}
}

// assertConsistent double-checks internal invariants; exposed for tests.
func (d *Deployment) assertConsistent() error {
	if d.stats.MaxCollectVirtual > 0 && d.cfg.SubWindow > 0 &&
		d.stats.MaxCollectVirtual > d.cfg.SubWindow {
		return errCollectTooSlow{d.stats.MaxCollectVirtual, d.cfg.SubWindow}
	}
	return nil
}

type errCollectTooSlow struct {
	got, budget time.Duration
}

func (e errCollectTooSlow) Error() string {
	return "omniwindow: C&R time " + e.got.String() + " exceeds sub-window " + e.budget.String() +
		" — two memory regions are insufficient at this rate (§6)"
}
