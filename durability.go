package omniwindow

import (
	"fmt"
	"time"

	"omniwindow/internal/hashing"
	"omniwindow/internal/obs"
	"omniwindow/internal/packet"
	"omniwindow/internal/wire"
)

// This file wires the deployment into internal/durable: WAL appends on
// every controller-bound delivery, checkpoints at sub-window boundaries,
// crash-restart recovery, and the hot-standby promotion path.
//
// A durable-store write failure is recorded once (DurabilityErr) and
// disables further logging; the deployment keeps running — durability
// degrades, telemetry does not stop.

// logBatch appends one delivered AFR packet's records to the write-ahead
// log, grouped per controller shard (matching the table partitioning) and
// per sub-window (one WAL frame describes one sub-window's records).
// Grouping runs over deployment-held scratch (walKeys/walParts) that is
// reused across packets: the group count is tiny (shards × live
// sub-windows), so a linear key scan beats a per-packet map allocation.
func (d *Deployment) logBatch(c *packet.Packet) {
	if d.store == nil || d.storeErr != nil || d.crashed || len(c.OW.AFRs) == 0 {
		return
	}
	retrans := c.OW.Flag == packet.OWRetransmit
	keys, parts := d.walKeys[:0], d.walParts
	for _, r := range c.OW.AFRs {
		k := walKey{hashing.Shard(r.Key, d.ckptShards), r.SubWindow}
		gi := -1
		for i := range keys {
			if keys[i] == k {
				gi = i
				break
			}
		}
		if gi < 0 {
			gi = len(keys)
			keys = append(keys, k)
			if gi == len(parts) {
				parts = append(parts, nil)
			}
		}
		parts[gi] = append(parts[gi], r)
	}
	d.walKeys, d.walParts = keys, parts
	for i, k := range keys {
		err := d.store.AppendBatch(k.shard, k.sw, retrans, parts[i])
		parts[i] = parts[i][:0]
		if err != nil {
			d.storeErr = err
			return
		}
	}
}

// logTrigger appends a sub-window's trigger announcement to the control
// log.
func (d *Deployment) logTrigger(sw uint64, keyCount uint32) {
	if d.store == nil || d.storeErr != nil || d.crashed {
		return
	}
	if err := d.store.AppendTrigger(sw, keyCount); err != nil {
		d.storeErr = err
	}
}

// logFinish appends a FinishSubWindow marker, then checkpoints when the
// boundary is a checkpoint boundary. The checkpoint is exported AFTER the
// finish is logged, so ThroughLSN covers it and replay never re-runs an
// assembly the snapshot already reflects.
func (d *Deployment) logFinish(sw uint64) {
	if d.store == nil || d.storeErr != nil || d.crashed {
		return
	}
	if err := d.store.AppendFinish(sw); err != nil {
		d.storeErr = err
		return
	}
	every := uint64(d.cfg.CheckpointEvery)
	if every == 0 {
		every = 1
	}
	if (sw+1)%every != 0 {
		return
	}
	snap := d.ctrl.ExportState()
	ckptStart := time.Now()
	if err := d.store.Checkpoint(snap); err != nil {
		d.storeErr = err
		return
	}
	d.obs.ring.Record(obs.StageCheckpoint, sw, -1, int64(time.Since(ckptStart)))
	// The standby tails checkpoints: each one overwrites its whole state,
	// keeping it at most one checkpoint interval behind the primary.
	if d.standby != nil && !d.failedOver {
		d.standby.RestoreState(snap)
	}
}

// recover replays the durable state into a freshly built deployment: the
// checkpoint restores the controller wholesale, then the WAL frames it
// does not cover re-run in their original (LSN) order — re-ingested
// batches, re-announced triggers, re-assembled windows (appended to
// Results exactly where the pre-crash run emitted them) and re-applied
// shed notes. Finally the window manager fast-forwards past every
// finished sub-window so replayed boundaries are not terminated twice.
func (d *Deployment) recover() error {
	snap, recs, err := d.store.Recover()
	if err != nil {
		return fmt.Errorf("omniwindow: %w", err)
	}
	if snap == nil && len(recs) == 0 {
		return nil
	}
	if snap != nil {
		d.ctrl.RestoreState(snap)
	}
	for _, r := range recs {
		switch r.Type {
		case wire.WALAFRBatch:
			flag := packet.OWAFR
			if r.Retrans {
				flag = packet.OWRetransmit
			}
			d.ctrl.Receive(&packet.Packet{OW: packet.OWHeader{
				Flag: flag, SubWindow: r.SubWindow, AFRs: r.AFRs,
			}})
		case wire.WALTrigger:
			d.ctrl.Receive(&packet.Packet{OW: packet.OWHeader{
				Flag: packet.OWTrigger, SubWindow: r.SubWindow, KeyCount: r.KeyCount,
			}})
		case wire.WALFinish:
			if lf, ok := d.ctrl.LastFinished(); ok && r.SubWindow <= lf {
				continue // the checkpoint already reflects this assembly
			}
			w := d.ctrl.FinishSubWindow(r.SubWindow)
			d.appResults[0] = append(d.appResults[0], w...)
			d.stats.ReplayedWindows += len(w)
		case wire.WALShed:
			d.ctrl.NoteShed(r.SubWindow, int(r.Count))
		}
	}
	d.results = d.appResults[0]
	if lf, ok := d.ctrl.LastFinished(); ok {
		d.manager.FastForward(lf + 1)
	}
	// Warm the standby to the recovered state, as if it had tailed a
	// checkpoint taken right now.
	if d.standby != nil {
		d.standby.RestoreState(d.ctrl.ExportState())
	}
	return nil
}

// failover promotes the hot standby after the primary's death is detected
// mid-collection. The standby holds the last checkpoint it tailed — the
// previous boundary — so its only gap is the in-flight sub-window, whose
// switch state is still intact (the reset has not run). The deployment
// re-sends the trigger, and the caller's ordinary Phase-3 NACK loop then
// recovers the whole gap before the region resets. The returned duration
// is the remaining lease time the standby had to wait out before
// promoting (charged to the C&R virtual-time budget).
func (d *Deployment) failover(sw uint64) time.Duration {
	d.failedOver = true
	d.stats.Failovers++
	d.obs.ring.Record(obs.StageFailover, sw, -1, 0)
	wait := time.Duration(d.lease.Remaining(d.now))
	d.lease.Release()
	d.ctrls[0] = d.standby
	d.ctrl = d.standby
	d.standby = nil
	// The promoted standby owns fresh memory: the RDMA transport must
	// re-register its region and rebuild the switch-side AddressMAT so
	// hot-key verbs resolve to the new controller's addresses. Verbs
	// applied to the dead primary's region replay into the fresh one
	// through the boundary recovery step that follows.
	if d.rdma != nil {
		d.rdma.Reregister()
	}
	d.sendTrigger(sw)
	return wait
}

// noteRDMAShed charges records the RDMA transport dropped irrecoverably
// (cold-buffer overflow, replay-window eviction, invalidation losses) to
// the live controller's shed accounting and, when durability is on, the
// WAL — so restored state reconciles the same degraded windows.
func (d *Deployment) noteRDMAShed(sw uint64, n int) {
	d.ctrl.NoteShed(sw, n)
	if d.store == nil || d.storeErr != nil || d.crashed {
		return
	}
	if err := d.store.AppendShed(sw, uint32(n)); err != nil {
		d.storeErr = err
	}
}

// renewLease extends the primary's liveness lease after a successful
// collection round (no-op without a standby, or after promotion — the
// promoted standby has no peer watching it).
func (d *Deployment) renewLease() {
	if d.lease != nil && !d.failedOver {
		d.lease.Renew(d.now)
	}
}

// crashIfScheduled halts the deployment at a scheduled crash boundary
// when no standby exists (with one, the crash is handled mid-collection
// by failover instead). The store is closed: a dead process holds no file
// handles, and the torn state left on disk is exactly what recovery must
// cope with.
func (d *Deployment) crashIfScheduled(sw uint64) {
	if d.cfg.Crash == nil || d.crashed || d.standby != nil || d.failedOver {
		return
	}
	if !d.cfg.Crash.At(sw) {
		return
	}
	d.crashed = true
	d.crashedAt = sw
	if d.store != nil {
		d.store.Close()
	}
}
