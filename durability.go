package omniwindow

import (
	"errors"
	"fmt"
	"time"

	"omniwindow/internal/durable"
	"omniwindow/internal/hashing"
	"omniwindow/internal/obs"
	"omniwindow/internal/packet"
	"omniwindow/internal/wire"
)

// This file wires the deployment into internal/durable: WAL appends on
// every controller-bound delivery, checkpoints at sub-window boundaries,
// crash-restart recovery, and the hot-standby promotion path.
//
// Disk faults never stop telemetry. When the store's own retry budget
// cannot land a write (persistent EIO, a full disk), the deployment flips
// to DEGRADED durability: windows keep flowing byte-identical to the
// healthy run, while skipped checkpoint/WAL writes are counted as
// DurabilityGaps — pressure, not damage, because the live state is still
// whole. Every boundary while degraded probes the disk with a fresh
// checkpoint + new WAL generation (durable.Heal); the first success
// re-enters durable mode. Damage only appears if a crash or failover
// lands inside a degraded stretch: the un-replayable sub-windows are then
// charged as Missing (NoteLost), so their windows assemble Incomplete —
// explicitly, never silently wrong.

// logBatch appends one delivered AFR packet's records to the write-ahead
// log, grouped per controller shard (matching the table partitioning) and
// per sub-window (one WAL frame describes one sub-window's records).
// Grouping runs over deployment-held scratch (walKeys/walParts) that is
// reused across packets: the group count is tiny (shards × live
// sub-windows), so a linear key scan beats a per-packet map allocation.
func (d *Deployment) logBatch(c *packet.Packet) {
	if d.store == nil || d.storeDead || d.crashed || len(c.OW.AFRs) == 0 {
		return
	}
	if d.degraded {
		d.noteDurabilityGap()
		return
	}
	retrans := c.OW.Flag == packet.OWRetransmit
	keys, parts := d.walKeys[:0], d.walParts
	for _, r := range c.OW.AFRs {
		k := walKey{hashing.Shard(r.Key, d.ckptShards), r.SubWindow}
		gi := -1
		for i := range keys {
			if keys[i] == k {
				gi = i
				break
			}
		}
		if gi < 0 {
			gi = len(keys)
			keys = append(keys, k)
			if gi == len(parts) {
				parts = append(parts, nil)
			}
		}
		parts[gi] = append(parts[gi], r)
	}
	d.walKeys, d.walParts = keys, parts
	for i, k := range keys {
		var err error
		if d.degraded {
			// A mid-packet fault degrades the rest of the packet's
			// groups too — each skipped frame is one more gap.
			d.noteDurabilityGap()
		} else {
			err = d.store.AppendBatch(k.shard, k.sw, retrans, parts[i])
		}
		parts[i] = parts[i][:0]
		if err != nil {
			d.durabilityFault(k.sw, err)
			if d.storeDead {
				return
			}
		}
	}
}

// logTrigger appends a sub-window's trigger announcement to the control
// log.
func (d *Deployment) logTrigger(sw uint64, keyCount uint32) {
	if d.store == nil || d.storeDead || d.crashed {
		return
	}
	if d.degraded {
		d.noteDurabilityGap()
		return
	}
	if err := d.store.AppendTrigger(sw, keyCount); err != nil {
		d.durabilityFault(sw, err)
	}
}

// logFinish appends a FinishSubWindow marker, then checkpoints when the
// boundary is a checkpoint boundary. The checkpoint is exported AFTER the
// finish is logged, so ThroughLSN covers it and replay never re-runs an
// assembly the snapshot already reflects.
//
// Boundaries also run the storage hygiene that must not sit on the append
// hot path: cadence-based segment sealing, the bit-rot scrubber (a
// corrupt frame quarantines its segment and forces an off-cadence
// checkpoint, re-covering the quarantined records from live state at zero
// loss), and — while degraded — the heal probe.
func (d *Deployment) logFinish(sw uint64) {
	if d.store == nil || d.storeDead || d.crashed {
		return
	}
	if d.degraded {
		d.noteDurabilityGap()
		d.healDurability(sw)
		return
	}
	if err := d.store.AppendFinish(sw); err != nil {
		d.durabilityFault(sw, err)
		return
	}
	d.store.SealBoundary()
	forceCkpt := false
	if corrupt, err := d.store.Scrub(); err == nil && corrupt > 0 {
		// Bit rot caught while the live state still covers the damaged
		// records: checkpoint now and the quarantined frames cost nothing.
		forceCkpt = true
	}
	every := uint64(d.cfg.CheckpointEvery)
	if every == 0 {
		every = 1
	}
	if (sw+1)%every != 0 && !forceCkpt {
		return
	}
	snap := d.ctrl.ExportState()
	ckptStart := time.Now()
	if err := d.store.Checkpoint(snap); err != nil {
		d.durabilityFault(sw, err)
		return
	}
	d.obs.ring.Record(obs.StageCheckpoint, sw, -1, int64(time.Since(ckptStart)))
	// The standby tails checkpoints: each one overwrites its whole state,
	// keeping it at most one checkpoint interval behind the primary —
	// unless the partition schedule cut the checkpoint channel at this
	// boundary, in which case the standby silently goes stale.
	if d.standby != nil && !d.cfg.PartitionFaults.CkptCut(sw) {
		d.standby.RestoreState(snap)
	}
}

// durabilityFault classifies a store write failure. A dead store (crash
// hook fired, or the store was closed under us) ends durable logging for
// good — that is the pre-existing crash semantics. Anything else is a
// disk fault that survived the store's own retry budget: enter degraded
// mode and keep the telemetry flowing.
func (d *Deployment) durabilityFault(sw uint64, err error) {
	if errors.Is(err, durable.ErrFenced) {
		// A stale-term rejection is the fencing protocol working as
		// designed, not a disk fault: the deposed writer must neither
		// degrade durability nor declare the store dead — the new term
		// holder is writing to it right now.
		return
	}
	if d.storeErr == nil {
		d.storeErr = err
	}
	if errors.Is(err, durable.ErrCrash) || errors.Is(err, durable.ErrClosed) {
		d.storeDead = true
		return
	}
	if !d.degraded {
		d.degraded = true
		d.obs.durDegraded.Set(1)
		d.obs.ring.Record(obs.StageDurabilityDegraded, sw, -1, 1)
	}
	d.noteDurabilityGap()
}

// noteDurabilityGap counts one durable write skipped (or failed) while
// degraded. Gaps are pressure, not damage: the live state is whole, so
// windows stay byte-identical — only a crash inside the degraded stretch
// turns the gap into Missing records.
func (d *Deployment) noteDurabilityGap() {
	d.stats.DurabilityGaps++
	d.obs.durGaps.Inc()
}

// healDurability probes the disk from a degraded boundary: durable.Heal
// seals every segment and cuts a fresh checkpoint on new WAL generations.
// Success re-enters durable mode with the on-disk state fully caught up —
// the degraded stretch needs no replay, the new checkpoint covers it.
func (d *Deployment) healDurability(sw uint64) {
	snap := d.ctrl.ExportState()
	if err := d.store.Heal(snap); err != nil {
		if errors.Is(err, durable.ErrCrash) || errors.Is(err, durable.ErrClosed) {
			d.storeDead = true
		}
		return // still degraded; probe again next boundary
	}
	d.degraded = false
	d.stats.DurabilityHeals++
	d.obs.durDegraded.Set(0)
	d.obs.ring.Record(obs.StageDurabilityDegraded, sw, -1, 0)
	// Re-sync the standby: it missed every checkpoint the degraded
	// stretch skipped (partition cuts apply to the heal checkpoint too).
	if d.standby != nil && !d.cfg.PartitionFaults.CkptCut(sw) {
		d.standby.RestoreState(snap)
	}
}

// DurabilityDegraded reports whether the deployment is currently running
// with durable writes suspended (disk faults exhausted the store's retry
// budget; the heal probe re-enters durable mode at a later boundary).
func (d *Deployment) DurabilityDegraded() bool { return d.degraded }

// recover replays the durable state into a freshly built deployment: the
// checkpoint restores the controller wholesale, then the WAL frames it
// does not cover re-run in their original (LSN) order — re-ingested
// batches, re-announced triggers, re-assembled windows (appended to
// Results exactly where the pre-crash run emitted them) and re-applied
// shed notes. Finally the window manager fast-forwards past every
// finished sub-window so replayed boundaries are not terminated twice.
//
// Damage is charged before replay: every sub-window a quarantined
// segment's LSN gap may span is marked Missing (NoteLost), so the windows
// it feeds assemble Incomplete instead of silently wrong. When recovery
// found damage, a fresh checkpoint is cut immediately — the next
// incarnation must not re-derive the same loss from the same broken
// files.
func (d *Deployment) recover() error {
	snap, recs, err := d.store.Recover()
	if err != nil {
		return fmt.Errorf("omniwindow: %w", err)
	}
	lost := d.store.Lost()
	damaged := len(lost) > 0 || d.store.Quarantined() > 0
	if snap == nil && len(recs) == 0 && !damaged {
		return nil
	}
	if snap != nil {
		d.ctrl.RestoreState(snap)
	}
	for _, lr := range lost {
		for sw := lr.SWLow; sw <= lr.SWHigh; sw++ {
			d.ctrl.NoteLost(sw, 1)
		}
	}
	for _, r := range recs {
		switch r.Type {
		case wire.WALAFRBatch:
			flag := packet.OWAFR
			if r.Retrans {
				flag = packet.OWRetransmit
			}
			d.ctrl.Receive(&packet.Packet{OW: packet.OWHeader{
				Flag: flag, SubWindow: r.SubWindow, AFRs: r.AFRs,
			}})
		case wire.WALTrigger:
			d.ctrl.Receive(&packet.Packet{OW: packet.OWHeader{
				Flag: packet.OWTrigger, SubWindow: r.SubWindow, KeyCount: r.KeyCount,
			}})
		case wire.WALFinish:
			if lf, ok := d.ctrl.LastFinished(); ok && r.SubWindow <= lf {
				continue // the checkpoint already reflects this assembly
			}
			w := d.ctrl.FinishSubWindow(r.SubWindow)
			d.appResults[0] = append(d.appResults[0], w...)
			d.stats.ReplayedWindows += len(w)
		case wire.WALShed:
			d.ctrl.NoteShed(r.SubWindow, int(r.Count))
		}
	}
	d.results = d.appResults[0]
	// The durable record attests sub-windows only up to the last replayed
	// finish. Anything between that and the first live traffic this
	// incarnation sees is un-attestable — a crash inside a degraded
	// stretch leaves exactly such a hole — and is charged Missing at
	// termination (see collect) rather than assembled as provably empty.
	d.unattested = true
	if lf, ok := d.ctrl.LastFinished(); ok {
		d.manager.FastForward(lf + 1)
		d.unattestedFrom = lf + 1
	}
	if damaged {
		// Quarantined files are renamed aside, not replayed again — cut a
		// checkpoint over the recovered (and damage-charged) state so the
		// next incarnation starts from coverage, not from the same holes.
		if err := d.store.Checkpoint(d.ctrl.ExportState()); err != nil {
			d.durabilityFault(0, err)
		}
	}
	// Warm the standby to the recovered state, as if it had tailed a
	// checkpoint taken right now.
	if d.standby != nil {
		d.standby.RestoreState(d.ctrl.ExportState())
	}
	return nil
}

// failover promotes the hot standby after the primary's death is detected
// mid-collection. The standby holds the last checkpoint it tailed — the
// previous boundary — so its only gap is the in-flight sub-window, whose
// switch state is still intact (the reset has not run). The deployment
// re-sends the trigger, and the caller's ordinary Phase-3 NACK loop then
// recovers the whole gap before the region resets. The returned duration
// is the remaining lease time the standby had to wait out before
// promoting (charged to the C&R virtual-time budget).
//
// A failover inside a degraded-durability stretch is the one live path
// where gaps become damage: the standby's last tailed checkpoint predates
// the stretch, and nothing durable covers the boundaries since — those
// sub-windows are charged Missing on the promoted controller, so their
// windows assemble Incomplete. The in-flight sub-window is excluded: its
// switch state is recovered live by the re-sent trigger.
func (d *Deployment) failover(sw uint64) time.Duration {
	if d.degraded && d.standby != nil {
		from := uint64(0)
		if lf, ok := d.standby.LastFinished(); ok {
			from = lf + 1
		}
		for s := from; s < sw; s++ {
			d.standby.NoteLost(s, 1)
		}
	}
	d.failedOver = true
	d.stats.Failovers++
	d.obs.ring.Record(obs.StageFailover, sw, -1, 0)
	wait := time.Duration(d.lease.Remaining(d.now))
	d.lease.Release()
	d.ctrls[0] = d.standby
	d.ctrl = d.standby
	d.standby = nil
	// The promoted standby acquires a fresh fencing term. The crashed
	// primary will never write again, but uniformity matters: every
	// promotion — crash or partition — advances the term, so the WAL's
	// term sequence alone tells the full failover history.
	if d.store != nil && !d.storeDead {
		if next, err := d.store.CASTerm(d.store.Term(), 2); err == nil {
			if d.store.AdoptTerm(next) == nil {
				d.term = next
			}
		}
	}
	// The promoted standby owns fresh memory: the RDMA transport must
	// re-register its region and rebuild the switch-side AddressMAT so
	// hot-key verbs resolve to the new controller's addresses. Verbs
	// applied to the dead primary's region replay into the fresh one
	// through the boundary recovery step that follows.
	if d.rdma != nil {
		d.rdma.Reregister()
	}
	d.sendTrigger(sw)
	return wait
}

// noteRDMAShed charges records the RDMA transport dropped irrecoverably
// (cold-buffer overflow, replay-window eviction, invalidation losses) to
// the live controller's shed accounting and, when durability is on, the
// WAL — so restored state reconciles the same degraded windows.
func (d *Deployment) noteRDMAShed(sw uint64, n int) {
	d.ctrl.NoteShed(sw, n)
	if d.store == nil || d.storeDead || d.crashed {
		return
	}
	if d.degraded {
		d.noteDurabilityGap()
		return
	}
	if err := d.store.AppendShed(sw, uint32(n)); err != nil {
		d.durabilityFault(sw, err)
	}
}

// partitionProbe is the standby's boundary health check under a
// partition schedule: it observes the primary's liveness lease through
// its own (possibly drifted) clock and, once the lease reads expired,
// promotes over the still-live primary behind a fencing term. It runs at
// every boundary — owned or idle — because the lease lapses on virtual
// time, not on traffic. Returns the virtual time charged to the C&R
// budget.
func (d *Deployment) partitionProbe(sw uint64) time.Duration {
	ps := d.cfg.PartitionFaults
	if ps == nil || d.standby == nil || d.lease == nil {
		return 0
	}
	// The standby observes the lease AT the boundary (collectAt), through
	// its own clock: constant drift makes a fast standby see expiry early
	// (a spurious but fencing-safe takeover) and a slow one see it late
	// (delayed promotion).
	if !d.lease.Expired(d.collectAt + ps.Drift()) {
		return 0
	}
	return d.partitionFailover(sw)
}

// partitionFailover promotes the standby over a live-but-partitioned
// primary. Unlike crash failover, the old primary is still running; what
// makes the takeover safe is fencing: the standby wins the term CAS
// first, so every durable write the zombie attempts from then on is
// rejected with ErrFenced, and observing that rejection the old primary
// self-demotes — it stops emitting and parks until re-admission.
//
// Boundaries the standby's checkpoint tailing missed (cut channel,
// degraded stretch) hold records that now live only in the unreachable
// half: they are charged Missing on the promoted controller, so every
// window spanning them assembles Incomplete instead of silently partial.
// The windows ENDING at those boundaries were already emitted by the old
// primary before it lost the term — legitimately, it held the lease then
// — so the promoted controller re-finishes those boundaries and discards
// the duplicate outputs (SuppressedWindows): every (Start, End) window
// has exactly one finalizer across the whole run.
func (d *Deployment) partitionFailover(sw uint64) time.Duration {
	// Win the term first. If the CAS write itself cannot land (dead or
	// faulted disk) there is no fence, and without a fence the takeover
	// is not safe — stay on the old primary and retry next boundary.
	next, err := d.store.CASTerm(d.store.Term(), 2)
	if err != nil {
		return 0
	}

	// The zombie's last writes: the partitioned primary, not yet aware it
	// was deposed, attempts its boundary finish and checkpoint. Both are
	// rejected under its stale term — the rejection is how it learns to
	// self-demote.
	fencedBefore := d.store.FencedWrites()
	_ = d.store.AppendFinish(sw)
	_ = d.store.Checkpoint(d.ctrl.ExportState())
	fenced := d.store.FencedWrites() - fencedBefore
	d.demotedCtrl = d.ctrl
	d.cleanSince = 0
	d.stats.Demotions++
	d.obs.ring.Record(obs.StageFenced, sw, -1, fenced)

	// Charge the un-handed-off boundaries [lastTailed+1, sw): Missing
	// first, then the suppressed re-finish.
	from := uint64(0)
	if lf, ok := d.standby.LastFinished(); ok {
		from = lf + 1
	}
	for s := from; s < sw; s++ {
		d.standby.NoteLost(s, 1)
		w := d.standby.FinishSubWindow(s)
		d.stats.SuppressedWindows += len(w)
	}

	d.failedOver = true
	d.stats.Failovers++
	d.obs.ring.Record(obs.StageFailover, sw, -1, int64(next))
	d.lease.Release()
	d.ctrls[0] = d.standby
	d.ctrl = d.standby
	d.standby = nil
	// The winner adopts the term it CASed: from here on its WAL frames,
	// segments and checkpoints carry it, and the demoted node can never
	// write under the old one again.
	if err := d.store.AdoptTerm(next); err == nil {
		d.term = next
	}
	if d.rdma != nil {
		d.rdma.Reregister()
	}
	// Re-announce the in-flight sub-window: the Phase-3 NACK loop then
	// recovers it from the still-unreset region, exactly as after a crash
	// failover. No lease wait is charged — the standby promotes only
	// after it already observed the lease expired.
	d.sendTrigger(sw)
	return 0
}

// readmitDemoted returns a demoted former primary to service as the new
// standby after the partition healed: its stale state is wiped and
// re-seeded from the current primary (as if it had just tailed a
// checkpoint), and the liveness lease is re-armed before the next
// boundary's probe — the freshly healed pair must not instantly
// re-promote over a lease nobody was renewing while no standby watched.
func (d *Deployment) readmitDemoted(sw uint64) {
	d.standby = d.demotedCtrl
	d.demotedCtrl = nil
	d.cleanSince = 0
	d.standby.RestoreState(d.ctrl.ExportState())
	d.stats.Readmissions++
	d.obs.ring.Record(obs.StageReadmit, sw, -1, 0)
	d.lease.Renew(d.now)
}

// maintainPartition runs the per-boundary partition bookkeeping: counts
// boundaries touched by an active fault, and — once a demoted node has
// seen enough consecutive clean boundaries — re-admits it as the new
// standby (Config.ReadmitAfter; negative disables re-admission).
func (d *Deployment) maintainPartition(sw uint64) {
	ps := d.cfg.PartitionFaults
	if ps == nil {
		return
	}
	if ps.Any(sw) {
		d.stats.PartitionEvents++
		d.cleanSince = 0
		return
	}
	if d.demotedCtrl == nil || d.cfg.ReadmitAfter < 0 {
		return
	}
	d.cleanSince++
	need := d.cfg.ReadmitAfter
	if need == 0 {
		need = 1
	}
	if d.cleanSince >= need {
		d.readmitDemoted(sw)
	}
}

// renewLease extends the primary's liveness lease after a successful
// collection round — unless the partition schedule says this boundary's
// renewal is lost (the standby sees nothing) or gray (it lands late,
// possibly after the lease already lapsed). A no-op once no standby
// watches: after promotion the new primary has no peer until a demoted
// node is re-admitted.
func (d *Deployment) renewLease(sw uint64) {
	if d.lease == nil || d.standby == nil {
		return
	}
	ps := d.cfg.PartitionFaults
	if ps.RenewCut(sw) {
		return // the renewal never arrives
	}
	if gray, delay := ps.GrayAt(sw); gray {
		d.lease.RenewDelayed(d.now, delay)
		return
	}
	d.lease.Renew(d.now)
}

// crashIfScheduled halts the deployment at a scheduled crash boundary
// when no standby exists (with one, the crash is handled mid-collection
// by failover instead). The store is closed: a dead process holds no file
// handles, and the torn state left on disk is exactly what recovery must
// cope with.
func (d *Deployment) crashIfScheduled(sw uint64) {
	if d.cfg.Crash == nil || d.crashed || d.standby != nil || d.failedOver {
		return
	}
	if !d.cfg.Crash.At(sw) {
		return
	}
	d.crashed = true
	d.crashedAt = sw
	if d.store != nil {
		d.store.Close()
	}
}
