package omniwindow

import (
	"testing"

	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
	"omniwindow/internal/telemetry"
	"omniwindow/internal/window"
)

// multiAppConfig co-deploys a heavy-hitter counter and a per-flow byte
// counter on one switch.
func multiAppConfig() Config {
	cfg := freqConfig(window.Tumbling(5), 0, false)
	cfg.AppFactory = nil
	cfg.Apps = []AppSpec{
		{
			Name: "packets",
			Factory: func(region int) StateApp {
				return telemetry.NewFrequencyApp(sketch.NewCountMin(4, 4096, uint64(region+1)), 4096)
			},
			Kind:          Frequency,
			Threshold:     100,
			CaptureValues: true,
		},
		{
			Name: "bytes",
			Factory: func(region int) StateApp {
				app := telemetry.NewFrequencyApp(sketch.NewSuMax(4, 1024, uint64(region+7)), 1024)
				app.VolumeOf = func(p *packet.Packet) uint64 { return uint64(p.Size) }
				return app
			},
			Kind:          Frequency,
			Threshold:     5000, // bytes
			CaptureValues: true,
		},
	}
	return cfg
}

func TestMultiAppDeployment(t *testing.T) {
	d, err := New(multiAppConfig())
	if err != nil {
		t.Fatal(err)
	}
	pkts := burstTrace(map[int64][]int{50 * ms: {1}, 250 * ms: {1, 2}}, 80)
	d.RunFor(pkts, 500*ms)

	if got := d.AppNames(); len(got) != 2 || got[0] != "packets" || got[1] != "bytes" {
		t.Fatalf("app names = %v", got)
	}
	pk := d.ResultsFor(0)
	by := d.ResultsFor(1)
	if len(pk) != 1 || len(by) != 1 {
		t.Fatalf("windows: packets=%d bytes=%d", len(pk), len(by))
	}
	// Both apps observed the same traffic through ONE shared tracker and
	// ONE C&R round per sub-window.
	if pk[0].Values[fk(1)] != 160 {
		t.Fatalf("packet count = %d want 160", pk[0].Values[fk(1)])
	}
	if by[0].Values[fk(1)] != 160*100 {
		t.Fatalf("byte count = %d want %d", by[0].Values[fk(1)], 160*100)
	}
	if pk[0].Values[fk(2)] != 80 || by[0].Values[fk(2)] != 80*100 {
		t.Fatalf("flow 2: pk=%d by=%d", pk[0].Values[fk(2)], by[0].Values[fk(2)])
	}
	// Detection thresholds apply per app.
	if len(pk[0].Detected) != 1 || pk[0].Detected[0] != fk(1) {
		t.Fatalf("packets app detected %v", pk[0].Detected)
	}
	if len(by[0].Detected) != 2 {
		t.Fatalf("bytes app detected %v", by[0].Detected)
	}
	// Results() aliases app 0.
	if len(d.Results()) != 1 || d.Results()[0].Values[fk(1)] != 160 {
		t.Fatal("Results() does not alias the first app")
	}
}

func TestMultiAppSharedCollection(t *testing.T) {
	// One C&R round serves both apps: the AFR count doubles but the
	// recirculation pass count does not (one enumeration pass emits all
	// apps' records for a key).
	single, _ := New(freqConfig(window.Tumbling(5), 100, false))
	multi, _ := New(multiAppConfig())
	pkts := burstTrace(map[int64][]int{50 * ms: {1, 2, 3}}, 30)
	single.RunFor(pkts, 500*ms)
	multi.RunFor(pkts, 500*ms)
	ss, ms2 := single.Stats(), multi.Stats()
	if ms2.AFRs != 2*ss.AFRs {
		t.Fatalf("multi-app AFRs = %d want %d", ms2.AFRs, 2*ss.AFRs)
	}
	// Pass counts differ only through the app-slot maximum in the reset
	// phase; enumeration passes are shared. Allow the reset delta.
	if ms2.RecircPasses > ss.RecircPasses {
		t.Fatalf("multi-app used more passes (%d) than single (%d)", ms2.RecircPasses, ss.RecircPasses)
	}
}

func TestMultiAppValidation(t *testing.T) {
	cfg := multiAppConfig()
	cfg.Apps[1].Factory = nil
	if _, err := New(cfg); err == nil {
		t.Fatal("nil factory accepted")
	}
	cfg = multiAppConfig()
	cfg.RDMA = true
	if _, err := New(cfg); err == nil {
		t.Fatal("multi-app RDMA accepted")
	}
	// An app whose slots exceed the configured reset budget is rejected.
	cfg = multiAppConfig()
	cfg.Apps[1].Factory = func(region int) StateApp {
		return telemetry.NewFrequencyApp(sketch.NewCountMin(4, 8192, 1), 8192)
	}
	if _, err := New(cfg); err == nil {
		t.Fatal("oversized app accepted")
	}
}
