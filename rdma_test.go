package omniwindow

import (
	"testing"

	"omniwindow/internal/rdma"
	"omniwindow/internal/window"
)

// TestRDMAColdBufferOverflowFallsBack forces the cold-key append buffer to
// overflow: records must fall back to the packet path instead of being
// lost, so window values stay exact.
func TestRDMAColdBufferOverflowFallsBack(t *testing.T) {
	cfg := freqConfig(window.Tumbling(1), 1, true)
	cfg.AddressMATSize = 4 // tiny MAT
	cfg.HotThreshold = 100 // nothing becomes hot
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Rewire the transport onto an 8-record cold buffer (white-box),
	// keeping the deployment's shed hook so overflow is charged.
	d.rdma = rdma.NewTransport(rdma.TransportConfig{
		Rows: cfg.AddressMATSize, Lanes: cfg.Plan.Size, BufCap: 8,
		OnShed: func(sw uint64, n int) { d.noteRDMAShed(sw, n) },
	})

	flows := make([]int, 40)
	for i := range flows {
		flows[i] = i + 1
	}
	pkts := burstTrace(map[int64][]int{50 * ms: flows}, 5)
	results := d.RunFor(pkts, 100*ms)
	if len(results) == 0 {
		t.Fatal("no windows")
	}
	got := map[int]uint64{}
	for _, w := range results {
		for i := range flows {
			got[flows[i]] += w.Values[fk(flows[i])]
		}
	}
	for _, f := range flows {
		if got[f] != 5 {
			t.Fatalf("flow %d value = %d want 5 (overflowed record lost)", f, got[f])
		}
	}
	// The tiny buffer must actually have overflowed for this test to
	// prove anything: 40 AFRs >> 8 slots.
	if d.stats.ColdAFRs >= 40 {
		t.Fatalf("cold buffer never overflowed (cold=%d)", d.stats.ColdAFRs)
	}
	if st := d.rdma.Stats(); st.Overflows == 0 || d.stats.FallbackAFRs != st.Overflows {
		t.Fatalf("overflow fallback not accounted: transport %+v, deployment fallbacks %d",
			st, d.stats.FallbackAFRs)
	}
	// Overflow charges shed accounting (pressure), but the fallback
	// repaired every record, so the windows are exact — Shed > 0 with
	// nothing Missing, not Degraded.
	for _, w := range results {
		if w.ShedAFRs == 0 {
			t.Fatalf("window [%d,%d] overflow not charged to ShedAFRs", w.Start, w.End)
		}
		if w.Degraded || w.MissingAFRs != 0 {
			t.Fatalf("repaired overflow marked window degraded: %+v", w)
		}
	}
}

// TestRDMAHotPromotionLifecycle drives a key through cold → hot → demoted.
// Hotness decays once per completed window, so a key must recur within a
// window (HotThreshold sub-window appearances) to earn a MAT entry and
// must keep recurring to keep it.
func TestRDMAHotPromotionLifecycle(t *testing.T) {
	cfg := freqConfig(window.Tumbling(2), 1, true)
	cfg.HotThreshold = 2
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Flow 1 recurs in four consecutive sub-windows (two full windows),
	// then goes quiet while flow 2 appears once.
	pkts := burstTrace(map[int64][]int{
		50 * ms:  {1},
		150 * ms: {1},
		250 * ms: {1},
		350 * ms: {1},
		450 * ms: {2},
	}, 10)
	d.RunFor(pkts, 600*ms)
	st := d.Stats()
	if st.HotAFRs == 0 {
		t.Fatalf("recurring key never promoted: %+v", st)
	}
	if st.ColdAFRs == 0 {
		t.Fatal("first sightings should travel cold")
	}
	// Flow 2 appeared once: never hot. Flow 1 may or may not have been
	// demoted by the trailing decay, but the MAT must hold at most it.
	if d.rdma.MATLen() > 1 {
		t.Fatalf("address MAT holds %d entries, want <= 1", d.rdma.MATLen())
	}
	// Totals survive both paths.
	total := uint64(0)
	for _, w := range d.Results() {
		total += w.Values[fk(1)] + w.Values[fk(2)]
	}
	if total != 50 {
		t.Fatalf("total measured = %d want 50", total)
	}
}
