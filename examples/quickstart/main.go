// Quickstart: detect heavy hitters over a 500 ms sliding window (100 ms
// slide) with OmniWindow. A Count-Min sketch sized for one 100 ms
// sub-window is deployed per memory region; the controller merges the
// collected AFRs into sliding windows and thresholds them.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"omniwindow"
	"omniwindow/internal/sketch"
	"omniwindow/internal/telemetry"
	"omniwindow/internal/trace"
)

func main() {
	// A synthetic workload with a burst straddling the 500 ms boundary —
	// the case fixed-size tumbling windows miss (paper Figure 1).
	const ms = trace.Millisecond
	cfg := trace.DefaultConfig(1)
	cfg.Flows = 5000
	cfg.Duration = 1500 * ms
	cfg.Anomalies = []trace.Anomaly{
		trace.HeavyBurst{Key: trace.BurstKey(0), Packets: 800, At: 500 * ms, Spread: 200 * ms},
	}
	pkts := trace.New(cfg).Generate()

	d, err := omniwindow.New(omniwindow.Config{
		SubWindow: 100 * time.Millisecond,
		Plan:      omniwindow.Sliding(5, 1), // 500 ms window, 100 ms slide
		Kind:      omniwindow.Frequency,
		Threshold: 500,
		AppFactory: func(region int) omniwindow.StateApp {
			cm := sketch.NewCountMin(4, 4096, uint64(region+1))
			return telemetry.NewFrequencyApp(cm, 4096)
		},
		Slots: 4096,
	})
	if err != nil {
		log.Fatal(err)
	}

	results := d.RunFor(pkts, cfg.Duration)
	fmt.Printf("processed %d packets across %d sub-windows\n",
		d.Stats().Packets, d.Stats().SubWindows)
	for _, w := range results {
		if len(w.Detected) == 0 {
			continue
		}
		fmt.Printf("window [sub %d..%d] heavy hitters:\n", w.Start, w.End)
		for _, k := range w.Detected {
			fmt.Printf("  %s\n", k)
		}
	}
	st := d.Stats()
	fmt.Printf("collect-and-reset: worst sub-window %v (budget %v) — two memory regions suffice\n",
		st.MaxCollectVirtual, 100*time.Millisecond)
}
