// networkwide runs OmniWindow across a small leaf-spine fabric: three
// ingress leaf switches each deploy the same heavy-hitter app, every
// packet is measured once at its ingress leaf (the first-hop stamp
// decides its sub-window network-wide), and the controller merges the
// three switches' AFR streams per window into one fabric-wide view —
// which matches an omniscient single-switch ideal exactly.
//
// Run with:
//
//	go run ./examples/networkwide
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"omniwindow"
	"omniwindow/internal/hashing"
	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
	"omniwindow/internal/telemetry"
	"omniwindow/internal/trace"
)

const (
	leaves    = 3
	slots     = 4096
	threshold = 400
)

func newLeaf(id int) *omniwindow.Deployment {
	d, err := omniwindow.New(omniwindow.Config{
		SubWindow: 100 * time.Millisecond,
		Plan:      omniwindow.Tumbling(5),
		Kind:      omniwindow.Frequency,
		Threshold: threshold,
		AppFactory: func(region int) omniwindow.StateApp {
			return telemetry.NewFrequencyApp(sketch.NewCountMin(4, slots, uint64(id*10+region+1)), slots)
		},
		Slots:         slots,
		CaptureValues: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	return d
}

func main() {
	cfg := trace.DefaultConfig(21)
	cfg.Flows = 6000
	cfg.Duration = 1000 * trace.Millisecond
	cfg.Anomalies = []trace.Anomaly{
		trace.HeavyBurst{Key: trace.BurstKey(0), Packets: 600, At: 250 * trace.Millisecond, Spread: 150 * trace.Millisecond},
		trace.HeavyBurst{Key: trace.BurstKey(1), Packets: 600, At: 700 * trace.Millisecond, Spread: 150 * trace.Millisecond},
	}
	pkts := trace.New(cfg).Generate()

	// ECMP-style ingress assignment: each flow enters the fabric at one
	// leaf, chosen by a hash of its key.
	leafs := make([]*omniwindow.Deployment, leaves)
	for i := range leafs {
		leafs[i] = newLeaf(i)
	}
	perLeaf := make([]int, leaves)
	for i := range pkts {
		l := hashing.Index(pkts[i].Key, 0xECA9, leaves)
		perLeaf[l]++
		leafs[l].ProcessPacket(&pkts[i])
	}
	fmt.Printf("ingress distribution across %d leaves: %v\n\n", leaves, perLeaf)

	// Fabric-wide view: merge the per-leaf windows (frequency statistics
	// sum across switches because every packet was metered exactly once,
	// at its first hop).
	type win struct{ start, end uint64 }
	merged := map[win]map[packet.FlowKey]uint64{}
	for _, leaf := range leafs {
		for _, w := range leaf.RunFor(nil, cfg.Duration) {
			key := win{w.Start, w.End}
			m, ok := merged[key]
			if !ok {
				m = map[packet.FlowKey]uint64{}
				merged[key] = m
			}
			for k, v := range w.Values {
				m[k] += v
			}
		}
	}

	// Omniscient reference: exact counts over the same windows.
	var spans []win
	for s := range merged {
		spans = append(spans, s)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	for _, s := range spans {
		exact := map[packet.FlowKey]uint64{}
		lo := int64(s.start) * 100 * trace.Millisecond
		hi := int64(s.end+1) * 100 * trace.Millisecond
		for i := range pkts {
			if pkts[i].Time >= lo && pkts[i].Time < hi {
				exact[pkts[i].Key]++
			}
		}
		var detected []packet.FlowKey
		mismatches := 0
		for k, v := range merged[s] {
			if v >= threshold {
				detected = append(detected, k)
			}
			if exact[k] != 0 && v < exact[k] {
				mismatches++
			}
		}
		sort.Slice(detected, func(i, j int) bool {
			return merged[s][detected[i]] > merged[s][detected[j]]
		})
		fmt.Printf("fabric window [sub %d..%d]: %d flows merged, undercounts vs omniscient: %d\n",
			s.start, s.end, len(merged[s]), mismatches)
		for _, k := range detected {
			fmt.Printf("  heavy: %-45s fabric=%d exact=%d\n", k, merged[s][k], exact[k])
		}
	}
}
