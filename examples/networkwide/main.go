// networkwide runs OmniWindow across a small leaf fabric using the
// fabric package: three ingress leaf switches each deploy the same
// heavy-hitter app, every packet is measured once at its ingress leaf
// (the first-hop stamp decides its sub-window network-wide), and the
// fabric merges the three switches' windows into one network-wide view —
// which matches an omniscient single-switch ideal exactly.
//
// The second half of the demo reruns the same trace with leaf 1 on a
// reboot schedule: the fabric resyncs the wiped switch with epoch
// beacons, and every window whose coverage the failure touched comes
// back explicitly marked Degraded with the failed switch named and its
// coverage gap recorded — instead of silently undercounting.
//
// Run with:
//
//	go run ./examples/networkwide
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"omniwindow"
	"omniwindow/internal/fabric"
	"omniwindow/internal/faults"
	"omniwindow/internal/hashing"
	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
	"omniwindow/internal/telemetry"
	"omniwindow/internal/trace"
)

const (
	leaves    = 3
	slots     = 4096
	threshold = 400
)

func leafConfig(id int) omniwindow.Config {
	return omniwindow.Config{
		SubWindow: 100 * time.Millisecond,
		Plan:      omniwindow.Tumbling(5),
		Kind:      omniwindow.Frequency,
		Threshold: threshold,
		AppFactory: func(region int) omniwindow.StateApp {
			return telemetry.NewFrequencyApp(sketch.NewCountMin(4, slots, uint64(id*10+region+1)), slots)
		},
		Slots:         slots,
		CaptureValues: true,
	}
}

func newFabric(scheds []*faults.SwitchSchedule, debugAddr string) *fabric.Fabric {
	cfg := fabric.Config{
		Switches: make([]fabric.SwitchConfig, leaves),
		// ECMP-style ingress assignment: each flow enters the fabric at
		// one leaf, chosen by a hash of its key, and is metered only
		// there.
		Route: func(p *packet.Packet) []int {
			return []int{hashing.Index(p.Key, 0xECA9, leaves)}
		},
		Beacons: true,
		// One aggregated observability endpoint for the whole fabric:
		// every leaf's metrics carry a switch label, and the lifecycle
		// trace interleaves all three. Empty disables.
		DebugAddr: debugAddr,
	}
	for i := range cfg.Switches {
		cfg.Switches[i].Config = leafConfig(i)
		if scheds != nil {
			cfg.Switches[i].Faults = scheds[i]
		}
	}
	f, err := fabric.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return f
}

func main() {
	debugAddr := flag.String("debug", "", "serve the fabric-wide observability endpoint on this address; empty disables")
	flag.Parse()

	cfg := trace.DefaultConfig(21)
	cfg.Flows = 6000
	cfg.Duration = 1000 * trace.Millisecond
	cfg.Anomalies = []trace.Anomaly{
		trace.HeavyBurst{Key: trace.BurstKey(0), Packets: 600, At: 250 * trace.Millisecond, Spread: 150 * trace.Millisecond},
		trace.HeavyBurst{Key: trace.BurstKey(1), Packets: 600, At: 700 * trace.Millisecond, Spread: 150 * trace.Millisecond},
	}
	pkts := trace.New(cfg).Generate()

	perLeaf := make([]int, leaves)
	for i := range pkts {
		perLeaf[hashing.Index(pkts[i].Key, 0xECA9, leaves)]++
	}
	fmt.Printf("ingress distribution across %d leaves: %v\n\n", leaves, perLeaf)

	// Fault-free run: the fabric-wide merge matches an omniscient exact
	// reference.
	healthy := newFabric(nil, *debugAddr)
	if *debugAddr != "" {
		fmt.Printf("observability endpoint: %s/metrics\n", healthy.DebugURL())
		defer healthy.CloseDebug()
	}
	windows := healthy.Run(clone(pkts))
	for _, w := range windows {
		exact := exactCounts(pkts, w.Start, w.End)
		mismatches := 0
		for k, v := range w.Values {
			if exact[k] != 0 && v < exact[k] {
				mismatches++
			}
		}
		fmt.Printf("fabric window [sub %d..%d]: %d flows merged, undercounts vs omniscient: %d\n",
			w.Start, w.End, len(w.Values), mismatches)
		detected := append([]packet.FlowKey(nil), w.Detected...)
		sort.Slice(detected, func(i, j int) bool {
			return w.Values[detected[i]] > w.Values[detected[j]]
		})
		for _, k := range detected {
			fmt.Printf("  heavy: %-45s fabric=%d exact=%d\n", k, w.Values[k], exact[k])
		}
	}

	// Chaos run: leaf 1 reboots at sub-window boundary 3, wiping its
	// counter, registers and epoch. Its in-flight data is lost, but the
	// fabric charges the loss to the affected windows instead of hiding
	// it, and an epoch beacon resyncs the switch at the next boundary.
	fmt.Println("\n--- rerun with leaf 1 rebooting at sub-window 3 ---")
	scheds := make([]*faults.SwitchSchedule, leaves)
	scheds[1] = &faults.SwitchSchedule{Reboot: faults.CrashSchedule{Fixed: []uint64{3}}}
	chaos := newFabric(scheds, "")
	for _, w := range chaos.Run(clone(pkts)) {
		status := "exact"
		if w.Degraded {
			status = fmt.Sprintf("DEGRADED (switches %v, gaps %v)", w.DegradedSwitches, w.Gaps)
		}
		fmt.Printf("fabric window [sub %d..%d]: %d flows, %s\n",
			w.Start, w.End, len(w.Values), status)
	}
	fmt.Printf("leaf 1 reboots: %d, epoch after resync: %d, coverage gaps: %v\n",
		chaos.Node(1).Stats().Reboots, chaos.Node(1).Epoch(), chaos.Gaps(1))
	if v := chaos.Violations(); len(v) > 0 {
		fmt.Printf("consistency violations: %v\n", v)
	} else {
		fmt.Println("consistency violations: none (no stale-epoch stamp was ever monitored)")
	}
}

func clone(pkts []packet.Packet) []packet.Packet {
	out := make([]packet.Packet, len(pkts))
	copy(out, pkts)
	return out
}

// exactCounts is the omniscient reference: per-flow packet counts over a
// window's time span.
func exactCounts(pkts []packet.Packet, start, end uint64) map[packet.FlowKey]uint64 {
	exact := map[packet.FlowKey]uint64{}
	lo := int64(start) * 100 * trace.Millisecond
	hi := int64(end+1) * 100 * trace.Millisecond
	for i := range pkts {
		if pkts[i].Time >= lo && pkts[i].Time < hi {
			exact[pkts[i].Key]++
		}
	}
	return exact
}
