// udpcollector splits OmniWindow across two "machines" connected by real
// UDP sockets on loopback: the switch process runs the data plane
// (window manager + flowkey tracking + AFR generation on the simulated
// pipeline) and ships every controller-bound packet as a wire-encoded
// datagram; the collector process runs a UDP listener feeding the
// controller, which assembles the merged window and answers the query —
// the paper's DPDK collection path as an ordinary network service.
//
// The uplink is deliberately lossy: a seeded fault schedule drops,
// duplicates and reorders a few percent of the AFR datagrams, and the §8
// NACK/retransmit recovery loop repairs the gaps before each region
// resets — so the printed windows are exact despite the losses.
//
// Run with:
//
//	go run ./examples/udpcollector
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"runtime"
	"time"

	"omniwindow/internal/afr"
	"omniwindow/internal/controller"
	"omniwindow/internal/faults"
	"omniwindow/internal/obs"
	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
	"omniwindow/internal/switchsim"
	"omniwindow/internal/telemetry"
	"omniwindow/internal/trace"
	"omniwindow/internal/window"
)

const (
	subWindow = 100 * trace.Millisecond
	windowSub = 5
	slots     = 4096
)

func main() {
	debugAddr := flag.String("debug", "", "serve the observability endpoint (/metrics, /debug/windows, pprof) on this address, e.g. 127.0.0.1:9900; empty disables")
	flag.Parse()

	// ---- Controller machine: UDP listener + controller. ----
	serverConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	// The switch side sends AFR bursts faster than a timeshared reader
	// can drain; a deep kernel buffer absorbs them (DPDK's RX ring).
	if uc, ok := serverConn.(*net.UDPConn); ok {
		_ = uc.SetReadBuffer(8 << 20)
	}
	// NewWithError (not New): a collector service must reject a bad
	// window plan gracefully instead of crashing on a panic.
	inner, err := controller.NewWithError(controller.Config{
		Plan:          window.Tumbling(windowSub),
		Kind:          afr.Frequency,
		Threshold:     400,
		CaptureValues: true,
		Shards:        runtime.GOMAXPROCS(0),
	})
	if err != nil {
		log.Fatalf("rejecting controller config: %v", err)
	}
	ctrl := controller.NewAsync(inner)
	// Explicit admission control: a bounded ingest queue with watermark
	// shedding. Under overload the collector drops recoverable
	// first-transmission datagrams first (the NACK loop below brings them
	// back), keeps retransmissions until hard-full, and never sheds
	// control frames — and every shed record is charged to its
	// sub-window, so windows that overload actually damaged print as
	// DEGRADED instead of silently under-counting.
	col := controller.NewCollectorConfig(serverConn, ctrl, controller.CollectorConfig{
		Workers:       runtime.GOMAXPROCS(0),
		MaxQueueDepth: 4096,
		ShedWatermark: 0.75,
		Policy:        controller.ShedRecoverableFirst,
		OnClose: func() {
			// Runs after the reader exits and every ingest worker has
			// drained: the point to flush a WAL segment or, here, to
			// certify that no record was abandoned mid-decode.
			fmt.Println("collector drained: all in-flight datagrams ingested")
		},
	})
	defer ctrl.Close()

	// Manual instrumentation — this example assembles the collector from
	// parts rather than going through omniwindow.Config, so it wires the
	// observability layer by hand: the controller's counters/histograms
	// plus the collector's scrape-time queue and delivery metrics, served
	// on one endpoint. Point owtop (cmd/owtop) at it while this runs.
	if *debugAddr != "" {
		reg := obs.NewRegistry()
		inner.SetObs(controller.Instrument(reg, ""))
		col.Instrument(reg, "")
		srv, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("observability endpoint: %s/metrics\n", srv.URL())
	}

	// ---- Switch machine: data plane + lossy UDP uplink. ----
	uplink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer uplink.Close()
	// The fault layer touches only AFR/retransmit frames (trigger frames
	// stay lossless so the controller always learns the key count).
	lossy := faults.WrapPacketConn(uplink, faults.New(faults.Config{
		Seed: 42, Drop: 0.03, Duplicate: 0.01, Reorder: 0.02, Truncate: 0.005, Corrupt: 0.005,
	}), func(b []byte) bool {
		return len(b) > 3 && (b[3] == byte(packet.OWAFR) || b[3] == byte(packet.OWRetransmit))
	})
	send := func(p *packet.Packet) {
		if err := controller.SendDatagram(lossy, col.Addr(), p); err != nil {
			log.Fatal(err)
		}
	}
	// barrier waits until the collector has accounted for every datagram
	// the fault layer actually put on the wire — ingested, rejected by
	// the decoder, or shed on overrun. The reliability protocol handles
	// the rest: dropped datagrams never arrive by design.
	barrier := func() {
		if err := lossy.Flush(); err != nil {
			log.Fatal(err)
		}
		deadline := time.Now().Add(3 * time.Second)
		for col.Received()+col.Recovered()+col.Drops()+col.Overruns() < lossy.Delivered() &&
			time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
	}

	mgr := window.NewManager(window.TimeoutSignal{Interval: subWindow}, window.NewRegions(2, slots))
	apps := []afr.StateApp{
		telemetry.NewFrequencyApp(sketch.NewCountMin(4, slots, 1), slots),
		telemetry.NewFrequencyApp(sketch.NewCountMin(4, slots, 2), slots),
	}
	engine := afr.NewEngine(afr.NewTracker(afr.TrackerConfig{
		BufferKeys: 8192, BloomBits: 1 << 18, BloomHashes: 3,
	}), apps, mgr.Regions())

	sw := switchsim.New(0)
	var pendingCollect []uint64
	sw.SetProgram(func(pass *switchsim.Pass) {
		p := pass.Pkt
		if engine.HandleSpecial(pass) {
			return
		}
		res := mgr.OnPacket(p, p.Time)
		for _, ended := range res.Terminated {
			trig := p.Clone()
			trig.OW.Flag = packet.OWTrigger
			trig.OW.SubWindow = ended
			trig.OW.KeyCount = uint32(engine.Tracker().KeyCount(mgr.Regions().Index(ended)))
			pass.CloneToController(trig)
			pendingCollect = append(pendingCollect, ended)
		}
		if !res.Spike {
			engine.Update(res.Region, p)
		}
	})

	// Workload: a heavy burst on top of background flows.
	cfg := trace.DefaultConfig(3)
	cfg.Flows = 4000
	cfg.Duration = 500 * trace.Millisecond
	cfg.Anomalies = []trace.Anomaly{
		trace.HeavyBurst{Key: trace.BurstKey(0), Packets: 700, At: 250 * trace.Millisecond, Spread: 300 * trace.Millisecond},
	}
	pkts := trace.New(cfg).Generate()

	recovered := 0
	collect := func(sw64 uint64) {
		engine.BeginCollection(sw64)
		for i := 0; i < 3; i++ {
			out := sw.Inject(&packet.Packet{OW: packet.OWHeader{Flag: packet.OWCollection}})
			for _, c := range out.ToController {
				send(c)
			}
		}
		// Reliability (§8): NACK the sequence gaps and retransmit before
		// the reset below destroys the state the re-queries need.
		barrier()
		rec := controller.RecoverSubWindow(controller.DefaultRetryPolicy(),
			func() []uint32 {
				barrier()
				return ctrl.MissingSeqs(sw64)
			},
			func(seqs []uint32) error {
				recovered += len(seqs)
				for _, rp := range engine.RetransmitPackets(seqs) {
					send(rp)
				}
				return lossy.Flush()
			},
			time.Sleep)
		if !rec.Complete && len(rec.Missing) > 0 {
			fmt.Printf("sub %d: %d AFRs unrecoverable after %d rounds\n",
				sw64, len(rec.Missing), rec.Rounds)
		}
		for i := 0; i < 3; i++ {
			sw.Inject(&packet.Packet{OW: packet.OWHeader{Flag: packet.OWReset}})
		}
	}

	ship := func(out switchsim.Output) {
		for _, c := range out.ToController {
			send(c)
		}
	}
	for i := range pkts {
		ship(sw.Inject(&pkts[i]))
		for len(pendingCollect) > 0 {
			collect(pendingCollect[0])
			pendingCollect = pendingCollect[1:]
		}
	}
	// Flush the final sub-window.
	last := mgr.ForceTerminate()
	trig := &packet.Packet{OW: packet.OWHeader{Flag: packet.OWTrigger, SubWindow: last,
		KeyCount: uint32(engine.Tracker().KeyCount(mgr.Regions().Index(last)))}}
	send(trig)
	collect(last)

	// ---- Controller machine: assemble the windows. ----
	// Graceful shutdown BEFORE assembly: Close stops the reader, drains
	// the queue through every in-flight ingest worker and runs the
	// OnClose hook, so window assembly below races no late ingest — and
	// the reader goroutine is gone, not leaked.
	barrier()
	if err := col.Close(); err != nil {
		log.Fatal(err)
	}
	for sub := uint64(0); sub <= last; sub++ {
		if missing := ctrl.MissingSeqs(sub); missing != nil {
			fmt.Printf("sub %d: %d AFRs still missing after recovery\n", sub, len(missing))
		}
		for _, w := range ctrl.FinishSubWindow(sub) {
			marker := ""
			if w.Incomplete {
				marker = fmt.Sprintf(" [INCOMPLETE: %d AFRs lost]", w.MissingAFRs)
			}
			if w.Degraded {
				marker += fmt.Sprintf(" [DEGRADED: %d AFRs shed under overload]", w.ShedAFRs)
			} else if w.ShedAFRs > 0 {
				marker += fmt.Sprintf(" [%d AFRs shed, all recovered]", w.ShedAFRs)
			}
			fmt.Printf("window [sub %d..%d]%s: %d flows merged, heavy hitters:\n",
				w.Start, w.End, marker, len(w.Values))
			for _, k := range w.Detected {
				fmt.Printf("  %s = %d packets\n", k, w.Values[k])
			}
		}
	}
	fmt.Printf("uplink: %d datagrams on the wire, %d first deliveries, %d recovered, %d NACKed, %d decode failures, %d datagrams shed (%d AFRs)\n",
		lossy.Delivered(), col.Received(), col.Recovered(), recovered, col.Drops(), col.Overruns(), col.ShedAFRs())
}
