// ddosdetect runs query-driven telemetry (Sonata-style) for two attacks
// at once — DDoS (Q4) and port scanning (Q3) — over OmniWindow sliding
// windows, on a trace with both attacks injected near window boundaries.
//
// Run with:
//
//	go run ./examples/ddosdetect
package main

import (
	"fmt"
	"log"
	"time"

	"omniwindow"
	"omniwindow/internal/packet"
	"omniwindow/internal/query"
	"omniwindow/internal/trace"
)

func main() {
	const ms = trace.Millisecond
	th := query.DefaultThresholds()

	cfg := trace.DefaultConfig(7)
	cfg.Flows = 8000
	cfg.Duration = 2000 * ms
	cfg.Anomalies = []trace.Anomaly{
		// A DDoS straddling the first window boundary and a port scan
		// inside the third window.
		trace.DDoS{Victim: 1, Sources: int(th.DDoSSources) * 2, PktsPerSource: 2, At: 500 * ms, Spread: 200 * ms},
		trace.PortScan{Scanner: 9, Victim: 2, Ports: int(th.ScanPorts) * 2, At: 1250 * ms, Spread: 100 * ms},
	}
	pkts := trace.New(cfg).Generate()

	for _, q := range []*query.Query{query.DDoSQuery(th), query.PortScanQuery(th)} {
		q := q
		d, err := omniwindow.New(omniwindow.Config{
			SubWindow: 100 * time.Millisecond,
			Plan:      omniwindow.Sliding(5, 1),
			Kind:      q.Kind,
			Threshold: q.Threshold,
			AppFactory: func(region int) omniwindow.StateApp {
				return query.NewState(q, 8192, 8192*16, uint64(region+1))
			},
			KeyOf: func(p *packet.Packet) (packet.FlowKey, bool) {
				if !q.Observes(p) {
					return packet.FlowKey{}, false
				}
				return q.Key(p), true
			},
			Slots: 8192,
		})
		if err != nil {
			log.Fatal(err)
		}
		results := d.RunFor(pkts, cfg.Duration)

		fmt.Printf("\n%s (threshold %d):\n", q.Name, q.Threshold)
		seen := map[packet.FlowKey]bool{}
		for _, w := range results {
			for _, k := range w.Detected {
				if seen[k] {
					continue
				}
				seen[k] = true
				fmt.Printf("  victim %s first flagged in window [sub %d..%d]\n",
					k.DstAddr(), w.Start, w.End)
			}
		}
		if len(seen) == 0 {
			fmt.Println("  nothing detected")
		}
	}
}
