// lossradar demonstrates network-wide packet-loss detection with two
// LossRadar meters on adjacent switches, and why OmniWindow's consistency
// model matters: with PTP-synchronized local clocks the two switches
// meter boundary packets into different sub-windows and report phantom
// losses; with OmniWindow's first-hop stamping only genuine losses
// surface (paper §5 and Exp#9).
//
// Run with:
//
//	go run ./examples/lossradar
package main

import (
	"fmt"

	"omniwindow/internal/netsim"
	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
	"omniwindow/internal/window"
)

const (
	subWindow = int64(20_000_000) // 20 ms sub-windows
	deviation = int64(200_000)    // 200 us PTP clock deviation
	flows     = 200
	perFlow   = 200
)

func traffic() []packet.Packet {
	pkts := make([]packet.Packet, 0, flows*perFlow)
	gap := int64(400_000_000) / int64(perFlow)
	for f := 0; f < flows; f++ {
		key := packet.FlowKey{SrcIP: uint32(0x0A000100 + f), DstIP: 0x0A000001,
			SrcPort: uint16(2000 + f), DstPort: 80, Proto: packet.ProtoUDP}
		for j := 0; j < perFlow; j++ {
			pkts = append(pkts, packet.Packet{Key: key, Size: 256, Seq: uint32(j),
				Time: int64(j)*gap + int64(f)*17})
		}
	}
	// The per-flow interleave is already nearly sorted; fix the rest.
	for i := 1; i < len(pkts); i++ {
		for j := i; j > 0 && pkts[j].Time < pkts[j-1].Time; j-- {
			pkts[j], pkts[j-1] = pkts[j-1], pkts[j]
		}
	}
	return pkts
}

func run(stamped bool) (reported, genuine int) {
	up := map[uint64]*sketch.LossRadar{}
	down := map[uint64]*sketch.LossRadar{}
	meter := func(ms map[uint64]*sketch.LossRadar, sw uint64) *sketch.LossRadar {
		if ms[sw] == nil {
			ms[sw] = sketch.NewLossRadar(4096, 3, 99)
		}
		return ms[sw]
	}
	m0 := window.NewManager(window.TimeoutSignal{Interval: subWindow}, window.NewRegions(2, 4))
	m1 := window.NewManager(window.TimeoutSignal{Interval: subWindow}, window.NewRegions(2, 4))

	lost := map[sketch.PacketID]bool{}
	off0, off1 := netsim.SymmetricOffsets(deviation)
	path := netsim.Path{
		Hops: []netsim.Hop{
			{Offset: off0, Process: func(p *packet.Packet, lt int64) {
				sw := uint64(lt / subWindow)
				if stamped {
					sw = m0.OnPacket(p, lt).Monitor
				}
				meter(up, sw).Insert(sketch.PacketID{Key: p.Key, Seq: p.Seq})
			}},
			{Offset: off1, Process: func(p *packet.Packet, lt int64) {
				sw := uint64(lt / subWindow)
				if stamped {
					sw = m1.OnPacket(p, lt).Monitor
				}
				meter(down, sw).Insert(sketch.PacketID{Key: p.Key, Seq: p.Seq})
			}},
		},
		LinkDelay: []int64{10_000},
	}
	drop := netsim.BernoulliLoss(0, 0.004, 5)
	path.Loss = func(p *packet.Packet, hop int) bool {
		if drop(p, hop) {
			lost[sketch.PacketID{Key: p.Key, Seq: p.Seq}] = true
			return true
		}
		return false
	}
	path.Run(traffic())

	for sw, u := range up {
		if d := down[sw]; d != nil {
			u.Subtract(d)
		}
		ids, _, _ := u.Decode()
		for _, id := range ids {
			reported++
			if lost[id] {
				genuine++
			}
		}
	}
	return reported, genuine
}

func main() {
	fmt.Printf("two switches, %d us PTP deviation, 0.4%% genuine loss\n\n", deviation/1000)
	for _, mode := range []struct {
		name    string
		stamped bool
	}{{"local clocks ", false}, {"OmniWindow   ", true}} {
		reported, genuine := run(mode.stamped)
		precision := 100.0
		if reported > 0 {
			precision = 100 * float64(genuine) / float64(reported)
		}
		fmt.Printf("%s reported %4d losses, %4d genuine  (precision %5.1f%%)\n",
			mode.name, reported, genuine, precision)
	}
	fmt.Println("\nOmniWindow's first-hop stamp keeps both meters on the same sub-window,")
	fmt.Println("so the subtracted difference contains only genuinely lost packets.")
}
