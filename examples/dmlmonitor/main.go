// dmlmonitor reproduces the paper's Exp#3 case study as an application:
// a parameter-server training job embeds its iteration number in every
// packet; OmniWindow's user-defined signal makes each iteration a window,
// and a span app measures each worker's gradient-transfer time in the
// network — no end-host instrumentation.
//
// Run with:
//
//	go run ./examples/dmlmonitor
package main

import (
	"fmt"
	"log"
	"strings"

	"omniwindow"
	"omniwindow/internal/dml"
	"omniwindow/internal/telemetry"
)

func main() {
	cfg := dml.DefaultConfig(11)
	cfg.Iterations = 64
	pkts := dml.Generate(cfg)

	d, err := omniwindow.New(omniwindow.Config{
		Signal: omniwindow.UserSignal{},
		Plan:   omniwindow.Tumbling(1), // one window per training iteration
		Kind:   omniwindow.Max,
		AppFactory: func(region int) omniwindow.StateApp {
			return telemetry.NewSpanApp(1024, uint64(region))
		},
		Slots:         1024,
		CaptureValues: true,
		Grace:         50_000, // 50 us: iterations are milliseconds long
	})
	if err != nil {
		log.Fatal(err)
	}
	results := d.Run(pkts)

	fmt.Printf("monitored %d packets over %d iterations (%d workers)\n\n",
		d.Stats().Packets, cfg.Iterations, cfg.Workers)
	fmt.Println("iter  ratio  per-worker transfer time (ms)")
	for _, w := range results {
		iter := int(w.Start)
		if iter >= cfg.Iterations || iter%4 != 0 {
			continue
		}
		var cells []string
		for wk := 0; wk < cfg.Workers; wk++ {
			cells = append(cells, fmt.Sprintf("w%d=%.2f", wk,
				float64(w.Values[dml.WorkerKey(wk)])/1e6))
		}
		bar := strings.Repeat("#", int(w.Values[dml.WorkerKey(0)]/50_000)+1)
		fmt.Printf("%4d  %5d  %s  %s\n", iter, cfg.Ratio(iter), strings.Join(cells, " "), bar)
	}
	fmt.Println("\ntransfer time halves every 16 iterations as the gradient")
	fmt.Println("compression ratio doubles — measured entirely in-network.")
}
