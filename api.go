package omniwindow

import (
	"omniwindow/internal/afr"
	"omniwindow/internal/controller"
	"omniwindow/internal/window"
)

// Re-exports of the types a deployment's user needs, so typical programs
// only import this package (plus a sketch/telemetry package for the
// application state they deploy).

// StateApp is one memory region's application state; see afr.StateApp.
type StateApp = afr.StateApp

// Attr is an AFR attribute; see afr.Attr.
type Attr = afr.Attr

// Kind is a statistic's merge pattern; see afr.Kind.
type Kind = afr.Kind

// Merge patterns (§4.2).
const (
	Frequency   = afr.Frequency
	Existence   = afr.Existence
	Max         = afr.Max
	Min         = afr.Min
	Distinction = afr.Distinction
)

// TrackerConfig sizes the flowkey tracking structures; see
// afr.TrackerConfig.
type TrackerConfig = afr.TrackerConfig

// Plan maps sub-windows to complete windows; see window.Plan.
type Plan = window.Plan

// Tumbling returns a non-overlapping plan of `size` sub-windows.
func Tumbling(size int) Plan { return window.Tumbling(size) }

// Sliding returns an overlapped plan advancing `slide` sub-windows per
// window.
func Sliding(size, slide int) Plan { return window.SlidingPlan(size, slide) }

// Signal decides sub-window termination; see window.Signal.
type Signal = window.Signal

// TimeoutSignal yields fixed-length sub-windows.
type TimeoutSignal = window.TimeoutSignal

// CounterSignal terminates after a packet-count threshold.
type CounterSignal = window.CounterSignal

// SessionSignal terminates after idle gaps.
type SessionSignal = window.SessionSignal

// UserSignal follows application-embedded window boundaries.
type UserSignal = window.UserSignal

// WindowResult is one completed window's output; see
// controller.WindowResult.
type WindowResult = controller.WindowResult

// OpTimes is the controller's O1-O5 breakdown; see controller.OpTimes.
type OpTimes = controller.OpTimes
