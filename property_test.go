package omniwindow

import (
	"math/rand"
	"testing"
	"time"

	"omniwindow/internal/afr"
	"omniwindow/internal/baseline"
	"omniwindow/internal/packet"
	"omniwindow/internal/window"
)

// exactStateApp is a collision-free StateApp: with it, the whole
// OmniWindow machine (tracking, C&R, merging, window assembly) must
// reproduce offline ground truth EXACTLY — any deviation is a framework
// bug, not sketch noise.
type exactStateApp struct {
	counts map[packet.FlowKey]uint64
	slots  int
}

func newExactStateApp(slots int) *exactStateApp {
	return &exactStateApp{counts: make(map[packet.FlowKey]uint64), slots: slots}
}

func (a *exactStateApp) Update(p *packet.Packet) { a.counts[p.Key]++ }
func (a *exactStateApp) Query(k packet.FlowKey) afr.Attr {
	return afr.Attr{Value: a.counts[k]}
}
func (a *exactStateApp) ResetSlot(i int) {
	if i == a.slots-1 {
		a.counts = make(map[packet.FlowKey]uint64)
	}
}
func (a *exactStateApp) Slots() int { return a.slots }

// randomTrace builds a random but time-sorted workload.
func randomTrace(rng *rand.Rand, flows, maxPkts int, duration int64) []packet.Packet {
	var pkts []packet.Packet
	for f := 0; f < flows; f++ {
		key := fk(f + 1)
		n := rng.Intn(maxPkts) + 1
		start := rng.Int63n(duration * 3 / 4)
		span := rng.Int63n(duration-start) + 1
		for i := 0; i < n; i++ {
			pkts = append(pkts, packet.Packet{
				Key: key, Size: 100, Seq: uint32(i),
				Time: start + rng.Int63n(span),
			})
		}
	}
	// sort
	for i := 1; i < len(pkts); i++ {
		for j := i; j > 0 && pkts[j].Time < pkts[j-1].Time; j-- {
			pkts[j], pkts[j-1] = pkts[j-1], pkts[j]
		}
	}
	return pkts
}

// TestFrameworkExactnessProperty: for random traces and random window
// plans, an OmniWindow deployment built on exact per-region state matches
// the offline ideal for EVERY window, both tumbling and sliding.
func TestFrameworkExactnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const slots = 64
	for trial := 0; trial < 12; trial++ {
		duration := (400 + rng.Int63n(400)) * ms
		subWin := (40 + rng.Int63n(60)) * ms
		size := rng.Intn(4) + 2
		slide := rng.Intn(size) + 1
		flows := rng.Intn(60) + 10
		pkts := randomTrace(rng, flows, 40, duration)

		plan := window.SlidingPlan(size, slide)
		d, err := New(Config{
			SubWindow: time.Duration(subWin),
			Plan:      plan,
			Kind:      afr.Frequency,
			Threshold: ^uint64(0),
			AppFactory: func(region int) afr.StateApp {
				return newExactStateApp(slots)
			},
			Slots:         slots,
			CaptureValues: true,
			Tracker:       afr.TrackerConfig{BufferKeys: 512, BloomBits: 1 << 16, BloomHashes: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		results := d.RunFor(pkts, duration)

		winNs := subWin * int64(size)
		slideNs := subWin * int64(slide)
		ideal := baseline.RunIdeal(pkts, duration, winNs, slideNs, func(win []packet.Packet) map[packet.FlowKey]uint64 {
			m := make(map[packet.FlowKey]uint64)
			for i := range win {
				m[win[i].Key]++
			}
			return m
		})

		if len(results) > len(ideal) {
			t.Fatalf("trial %d: more windows (%d) than ideal (%d)", trial, len(results), len(ideal))
		}
		for i := range results {
			got, want := results[i].Values, ideal[i].Values
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("trial %d (sub=%dms size=%d slide=%d) window %d key %v: got %d want %d",
						trial, subWin/ms, size, slide, i, k, got[k], v)
				}
			}
			for k, v := range got {
				if v != 0 && want[k] != v {
					t.Fatalf("trial %d window %d phantom key %v = %d (want %d)",
						trial, i, k, v, want[k])
				}
			}
		}
		if len(results) < len(ideal) {
			// RunFor flushes every sub-window within duration, so the
			// only permissible shortfall is zero.
			t.Fatalf("trial %d: fewer windows (%d) than ideal (%d)", trial, len(results), len(ideal))
		}
	}
}
