package omniwindow_test

// One benchmark per table/figure of the paper's evaluation. Each bench
// regenerates the corresponding result at SmallScale and logs the table;
// run with
//
//	go test -bench . -benchtime 1x
//
// to print every reproduction once. Absolute numbers come from the
// simulated substrate (see DESIGN.md); the comparisons mirror the paper's.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	omniwindow "omniwindow"

	"omniwindow/internal/afr"
	"omniwindow/internal/controller"
	"omniwindow/internal/dml"
	"omniwindow/internal/durable"
	"omniwindow/internal/experiments"
	"omniwindow/internal/faults"
	"omniwindow/internal/hashing"
	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
	"omniwindow/internal/switchsim"
	"omniwindow/internal/telemetry"
	"omniwindow/internal/window"
	"omniwindow/internal/wire"
)

const benchSeed = 2023

// BenchmarkExp1QueryDriven reproduces Figure 7: Q1-Q7 precision/recall
// under ITW, ISW, TW1, TW2, OTW, OSW.
func BenchmarkExp1QueryDriven(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunExp1(experiments.SmallScale(benchSeed))
		if i == 0 {
			b.Logf("Exp#1 (Figure 7)\n%s", res.Table())
		}
	}
}

// BenchmarkExp2Sketches reproduces Figure 8: the eight sketch algorithms
// under the six window settings plus Sliding Sketch.
func BenchmarkExp2Sketches(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunExp2(experiments.SmallScale(benchSeed))
		if i == 0 {
			b.Logf("Exp#2 (Figure 8)\n%s", res.Table())
		}
	}
}

// BenchmarkExp3DML reproduces Figure 9: per-iteration DML transfer times
// measured through user-defined window signals.
func BenchmarkExp3DML(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunExp3(dml.DefaultConfig(benchSeed))
		if i == 0 {
			b.Logf("Exp#3 (Figure 9), max measurement error %.4f\n%s", res.MaxRelError(), res.Table())
		}
	}
}

// BenchmarkExp4ControllerBreakdown reproduces Figure 10: the controller's
// per-sub-window O1-O5 time breakdown (real wall-clock measurements).
func BenchmarkExp4ControllerBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunExp4(experiments.SmallScale(benchSeed))
		if i == 0 {
			b.Logf("Exp#4 (Figure 10)\n%s", res.Table())
		}
	}
}

// BenchmarkExp5SwitchResources reproduces Table 2: per-feature switch
// resource usage.
func BenchmarkExp5SwitchResources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunExp5(experiments.SmallScale(benchSeed))
		if i == 0 {
			b.Logf("Exp#5 (Table 2)\n%s", res.Table())
		}
	}
}

// BenchmarkExp6AFRCollection reproduces Figure 11: AFR generation and
// collection time for OS, CPC, DPC, OW and the RDMA variants.
func BenchmarkExp6AFRCollection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunExp6(experiments.DefaultExp6Config())
		if i == 0 {
			passes, afrs := experiments.ValidateExp6Passes(4096, 16)
			b.Logf("Exp#6 (Figure 11) [functional check: %d passes, %d AFRs]\n%s", passes, afrs, res.Table())
		}
	}
}

// BenchmarkExp7AFRAggregation reproduces Figure 12: scalar vs vectorized
// aggregation of 1M AFRs (real wall-clock).
func BenchmarkExp7AFRAggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunExp7(1 << 20)
		if i == 0 {
			b.Logf("Exp#7 (Figure 12)\n%s", res.Table())
		}
	}
}

// BenchmarkExp8InSwitchReset reproduces Figure 13: reset time, OS path vs
// OW-4/8/16 clear packets, for 1-4 registers of 64K entries.
func BenchmarkExp8InSwitchReset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunExp8(65536, switchsim.DefaultCosts())
		if i == 0 {
			passes, clean := experiments.ValidateExp8Reset(4, 4096, 16)
			b.Logf("Exp#8 (Figure 13) [functional check: %d passes, clean=%v]\n%s", passes, clean, res.Table())
		}
	}
}

// BenchmarkExp9Consistency reproduces Figure 14: LossRadar precision
// under PTP clock deviation, local clocks vs OmniWindow stamping.
func BenchmarkExp9Consistency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunExp9(experiments.DefaultExp9Config(benchSeed))
		if i == 0 {
			b.Logf("Exp#9 (Figure 14)\n%s", res.Table())
		}
	}
}

// BenchmarkExp10WindowSizes reproduces Figure 15: heavy-hitter accuracy
// as the user-desired window grows from 0.5s to 2s.
func BenchmarkExp10WindowSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunExp10(experiments.SmallScale(benchSeed))
		if i == 0 {
			b.Logf("Exp#10 (Figure 15)\n%s", res.Table())
		}
	}
}

// BenchmarkAblationMergeStrategy compares the three sub-window merge
// strategies of §4.1 (A1).
func BenchmarkAblationMergeStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunAblationMerge(experiments.SmallScale(benchSeed))
		if i == 0 {
			b.Logf("Ablation A1 (merge strategies)\n%s", res.Table())
		}
	}
}

// BenchmarkAblationSALULayout compares the flat single-SALU layout with
// naive per-region registers (A2).
func BenchmarkAblationSALULayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunAblationSALU(4, 65536, 2)
		if i == 0 {
			b.Logf("Ablation A2 (SALU layout)\n%s", res.Table())
		}
	}
}

// BenchmarkAblationFlowkeyArray sweeps the flowkey-array size (A3).
func BenchmarkAblationFlowkeyArray(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunAblationFlowkey(experiments.SmallScale(benchSeed), []int{1024, 4096, 16384})
		if i == 0 {
			b.Logf("Ablation A3 (flowkey array)\n%s", res.Table())
		}
	}
}

// BenchmarkAblationSubWindowCount sweeps the sub-windows per window (A5).
func BenchmarkAblationSubWindowCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunAblationSubWindows(experiments.SmallScale(benchSeed), []int{2, 5, 10})
		if i == 0 {
			b.Logf("Ablation A5 (sub-window count)\n%s", res.Table())
		}
	}
}

// BenchmarkControllerSharded measures the controller's O2 (insert) + O3
// (merge) hot path — one full sub-window ingested and assembled per
// iteration — as the shard count grows. shards=1 is the sequential
// baseline; higher shard counts fan the key-value table work across
// cores (ingest is additionally driven from GOMAXPROCS goroutines, as the
// concurrent collector would). The per-iteration flow population mirrors
// the paper's 64K flows per 100 ms sub-window.
func BenchmarkControllerSharded(b *testing.B) {
	const flows = 1 << 16
	procs := runtime.GOMAXPROCS(0)
	shardCounts := []int{1, 2, 4}
	if procs > 4 {
		shardCounts = append(shardCounts, procs)
	}
	// Pre-generate one sub-window's records: unique well-spread keys,
	// rewritten to the iteration's sub-window number inside the loop.
	base := make([]packet.AFR, flows)
	for i := range base {
		h := hashing.Mix64(uint64(i) + 1)
		base[i] = packet.AFR{
			Key: packet.FlowKey{
				SrcIP: uint32(h), DstIP: uint32(h >> 32),
				SrcPort: uint16(i), DstPort: 443, Proto: packet.ProtoTCP,
			},
			Attr: uint64(i%100 + 1),
			Seq:  uint32(i),
		}
	}
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			ctrl := controller.New(controller.Config{
				Plan: window.Tumbling(1), Kind: afr.Frequency,
				Threshold: flows + 1, Shards: shards,
			})
			recs := make([]packet.AFR, flows)
			copy(recs, base)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw := uint64(i)
				for j := range recs {
					recs[j].SubWindow = sw
				}
				// Concurrent ingest, one chunk per core.
				var wg sync.WaitGroup
				chunk := (flows + procs - 1) / procs
				for at := 0; at < flows; at += chunk {
					end := at + chunk
					if end > flows {
						end = flows
					}
					wg.Add(1)
					go func(part []packet.AFR) {
						defer wg.Done()
						ctrl.IngestAFRs(part)
					}(recs[at:end])
				}
				wg.Wait()
				ctrl.FinishSubWindow(sw)
			}
			b.StopTimer()
			b.ReportMetric(float64(flows)*float64(b.N)/b.Elapsed().Seconds(), "AFRs/s")
		})
	}
}

// benchBase generates n well-spread unique-key AFRs for sub-window 0.
func benchBase(n int) []packet.AFR {
	recs := make([]packet.AFR, n)
	for i := range recs {
		h := hashing.Mix64(uint64(i) + 1)
		recs[i] = packet.AFR{
			Key: packet.FlowKey{
				SrcIP: uint32(h), DstIP: uint32(h >> 32),
				SrcPort: uint16(i), DstPort: 443, Proto: packet.ProtoTCP,
			},
			Attr: uint64(i%100 + 1),
			Seq:  uint32(i),
		}
	}
	return recs
}

// BenchmarkControllerIngestBatch measures the steady-state batched ingest
// path alone — one IngestAFRs call per iteration, sub-window assembly
// excluded via StopTimer — at several batch sizes. Run with -benchmem:
// the pooled steady state must sit at ~0 allocs/op, which the CI
// bench-regression gate pins against the checked-in baseline.
func BenchmarkControllerIngestBatch(b *testing.B) {
	const flowsPerSW = 1 << 16
	for _, batch := range []int{1, 32, 1024} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			ctrl := controller.New(controller.Config{
				Plan: window.Tumbling(1), Kind: afr.Frequency,
				Threshold: flowsPerSW + 1, Shards: runtime.GOMAXPROCS(0),
				ExpectedFlows: flowsPerSW,
			})
			recs := benchBase(flowsPerSW)
			b.ReportAllocs()
			b.ResetTimer()
			at, sw := 0, uint64(0)
			for i := 0; i < b.N; i++ {
				end := at + batch
				if end > flowsPerSW {
					end = flowsPerSW
				}
				ctrl.IngestAFRs(recs[at:end])
				at = end
				if at == flowsPerSW {
					// Rotate the sub-window outside the timer: this
					// benchmark isolates per-batch ingest cost.
					b.StopTimer()
					ctrl.FinishSubWindow(sw)
					sw++
					for j := range recs {
						recs[j].SubWindow = sw
					}
					at = 0
					b.StartTimer()
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "AFRs/s")
		})
	}
}

// BenchmarkCollectorDecodeIngest measures the collector worker loop body:
// wire-decode one MTU-sized AFR frame into a long-lived packet, then
// batched controller ingest — the per-datagram cost of the UDP path. Run
// with -benchmem: the pooled steady state must sit at ~0 allocs/op.
func BenchmarkCollectorDecodeIngest(b *testing.B) {
	const (
		batch    = wire.MaxAFRsPerDatagram
		flowsPSW = 1 << 14
		nFrames  = flowsPSW / batch
	)
	ctrl := controller.New(controller.Config{
		Plan: window.Tumbling(1), Kind: afr.Frequency,
		Threshold: flowsPSW + 1, Shards: runtime.GOMAXPROCS(0),
		ExpectedFlows: flowsPSW,
	})
	recs := benchBase(flowsPSW)
	frames := make([][]byte, nFrames)
	encode := func() {
		for f := 0; f < nFrames; f++ {
			enc, err := wire.Encode(frames[f][:0], &packet.Packet{OW: packet.OWHeader{
				Flag: packet.OWAFR, AFRs: recs[f*batch : (f+1)*batch],
			}})
			if err != nil {
				b.Fatal(err)
			}
			frames[f] = enc
		}
	}
	encode()
	var p packet.Packet
	b.ReportAllocs()
	b.ResetTimer()
	fi, sw := 0, uint64(0)
	for i := 0; i < b.N; i++ {
		if err := wire.DecodeInto(&p, frames[fi]); err != nil {
			b.Fatal(err)
		}
		ctrl.Receive(&p)
		fi++
		if fi == nFrames {
			b.StopTimer()
			ctrl.FinishSubWindow(sw)
			sw++
			for j := range recs {
				recs[j].SubWindow = sw
			}
			encode()
			fi = 0
			b.StartTimer()
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "AFRs/s")
}

// BenchmarkSketchZoo compares every heavy-hitter-capable sketch in the
// library under OmniWindow at equal memory (an extension beyond the
// paper's MV/HP pair).
func BenchmarkSketchZoo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunSketchZoo(experiments.SmallScale(benchSeed))
		if i == 0 {
			b.Logf("Extension (sketch zoo)\n%s", res.Table())
		}
	}
}

// benchRDMATrace builds a deterministic 5-sub-window, 40-flow trace for
// the RDMA collection benchmarks (sub-windows are 100 ms).
func benchRDMATrace() []packet.Packet {
	const ms = int64(time.Millisecond)
	var pkts []packet.Packet
	for swi := int64(0); swi < 5; swi++ {
		at := swi*100*ms + 50*ms
		for f := 1; f <= 40; f++ {
			n := 3 + (f+int(swi)*5)%7
			for i := 0; i < n; i++ {
				pkts = append(pkts, packet.Packet{
					Key:  packet.FlowKey{SrcIP: uint32(f), DstIP: 9, SrcPort: uint16(f), DstPort: 443, Proto: packet.ProtoTCP},
					Size: 100, Seq: uint32(i), Time: at + int64(i)*ms,
				})
			}
		}
	}
	return pkts
}

// benchRDMACollect runs the full RDMA deployment over the fixed trace
// once per iteration under the given transport fault schedule.
func benchRDMACollect(b *testing.B, sched *faults.RDMASchedule) {
	pkts := benchRDMATrace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := omniwindow.New(omniwindow.Config{
			SubWindow: 100 * time.Millisecond,
			Plan:      window.SlidingPlan(3, 1),
			Kind:      afr.Frequency,
			Threshold: 25,
			AppFactory: func(region int) afr.StateApp {
				return telemetry.NewFrequencyApp(sketch.NewCountMin(4, 4096, uint64(region+1)), 4096)
			},
			Slots:         4096,
			Tracker:       afr.TrackerConfig{BufferKeys: 1024, BloomBits: 1 << 16, BloomHashes: 3},
			CaptureValues: true,
			RDMA:          true,
			RDMAFaults:    sched,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res := d.RunFor(pkts, 500*int64(time.Millisecond)); len(res) == 0 {
			b.Fatal("no windows produced")
		}
	}
}

// BenchmarkRDMACollect measures the RDMA collection path end to end —
// fault-free against a transport that is actively recovering (PSN drops
// feeding the replay loop plus boundary QP errors forcing fallback). The
// bench-regression gate tracks both: recovery machinery must not tax the
// healthy path, and the recovering path must stay within its budget.
func BenchmarkRDMACollect(b *testing.B) {
	b.Run("fault-free", func(b *testing.B) {
		benchRDMACollect(b, nil)
	})
	b.Run("recovering", func(b *testing.B) {
		benchRDMACollect(b, &faults.RDMASchedule{Seed: 1,
			VerbError: 0.15, PSNDrop: 0.20,
			QPError: faults.CrashSchedule{Prob: 0.3}})
	})
}

// BenchmarkWALAppendRotating measures the durable WAL append hot path
// under realistic segment rotation: 8-AFR batches against a 16 KiB
// segment cap, so seal-and-rotate cost amortizes into the steady state
// the deployment's logBatch actually pays. Run with -benchmem: the
// fault-free append must sit at 0 allocs/op (rotation itself may
// allocate; it is off the per-append path). The bench-regression gate
// pins both time and allocations against the checked-in baseline.
func BenchmarkWALAppendRotating(b *testing.B) {
	s, err := durable.OpenStore(b.TempDir(), 1, durable.Options{SegmentBytes: 16 << 10})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	afrs := make([]packet.AFR, 8)
	for i := range afrs {
		afrs[i] = packet.AFR{
			Key:  packet.FlowKey{SrcPort: uint16(i), DstPort: 443, Proto: 6},
			Attr: uint64(i), Seq: uint32(i), SubWindow: 0,
		}
	}
	// Prime: open the first segment and grow the encode scratch.
	for i := 0; i < 4; i++ {
		if err := s.AppendBatch(0, 0, false, afrs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.AppendBatch(0, 0, false, afrs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(afrs))*float64(b.N)/b.Elapsed().Seconds(), "AFRs/s")
	b.ReportMetric(float64(s.Rotations()), "rotations")
	// Calibration passes (tiny b.N) legitimately stay inside one segment.
	if b.N >= 512 && s.Rotations() == 0 {
		b.Fatal("segment cap never rotated during the bench")
	}
}

// BenchmarkFailoverPromotion measures the two durable halves of a
// partition failover. term-handshake is the promotion critical path —
// the CAS that advances the fencing term plus the adopt that grants the
// promoted standby write authority, each persisting the sealed term
// record. fenced-append is the zombie side: a WAL append attempted under
// a stale term, which the store must reject in constant time with zero
// allocations — the deposed primary pays nothing to discover its
// demotion. The bench-regression gate pins both against the checked-in
// baseline (fenced-append at 0 allocs/op).
func BenchmarkFailoverPromotion(b *testing.B) {
	b.Run("term-handshake", func(b *testing.B) {
		s, err := durable.OpenStore(b.TempDir(), 1, durable.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			next, err := s.CASTerm(s.Term(), 2)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.AdoptTerm(next); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fenced-append", func(b *testing.B) {
		s, err := durable.OpenStore(b.TempDir(), 1, durable.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		if err := s.AppendFinish(0); err != nil {
			b.Fatal(err)
		}
		// Advance the authoritative term without adopting: this handle
		// is now the zombie.
		if _, err := s.CASTerm(s.Term(), 2); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.AppendFinish(1); err == nil {
				b.Fatal("stale-term append was accepted")
			}
		}
		b.StopTimer()
		if s.FencedWrites() < int64(b.N) {
			b.Fatal("fenced writes were not counted")
		}
	})
}
