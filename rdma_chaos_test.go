package omniwindow

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"omniwindow/internal/faults"
	"omniwindow/internal/rdma"
	"omniwindow/internal/window"
)

// This file is the RDMA chaos suite (make rdma-chaos): it proves the
// transport's contract under deterministic fault schedules. Within the
// retry/replay budget every window is byte-identical to the fault-free
// run — RNR retries absorb transient verb errors, the PSN NACK/replay
// loop closes in-flight gaps, and whatever neither can land rides the
// packet path with its original sequence numbers, so the controller's
// dedup makes the transport switch exact. Beyond the budget, windows are
// explicitly Degraded with MissingAFRs/ShedAFRs that reconcile against
// the transport's own loss count — never silently short.

// runRDMAChaos runs the standard chaos deployment in RDMA mode.
func runRDMAChaos(t *testing.T, mutate func(*Config)) *Deployment {
	t.Helper()
	cfg := freqConfig(window.SlidingPlan(3, 1), 25, true)
	cfg.RetryBackoff = time.Millisecond
	cfg.RetryMaxBackoff = 2 * time.Millisecond
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.RunFor(chaosTrace(), 500*ms)
	return d
}

// TestRDMAChaosByteIdentical is the tentpole assertion: under every
// schedule the retry/replay/fallback machinery can absorb — transient
// verb errors, in-flight PSN drops, async QP errors, sustained outages,
// region invalidations, and all of them at once — the merged windows are
// byte-identical to the fault-free RDMA run, with nothing shed and
// nothing missing.
func TestRDMAChaosByteIdentical(t *testing.T) {
	baseline := runRDMAChaos(t, nil)
	if len(baseline.Results()) == 0 {
		t.Fatal("baseline produced no windows")
	}

	cases := []struct {
		name  string
		sched *faults.RDMASchedule
		// exercised asserts the schedule actually hit the fault path it
		// is named for.
		exercised func(st rdma.TransportStats) string
	}{
		{"psn-drop/seed1", &faults.RDMASchedule{Seed: 1, PSNDrop: 0.25},
			func(st rdma.TransportStats) string {
				if st.PSNDrops == 0 || st.Replayed == 0 {
					return "no PSN drops replayed"
				}
				return ""
			}},
		{"psn-drop/seed2", &faults.RDMASchedule{Seed: 2, PSNDrop: 0.25},
			func(st rdma.TransportStats) string {
				if st.PSNDrops == 0 {
					return "no PSN drops"
				}
				return ""
			}},
		{"psn-drop/seed3", &faults.RDMASchedule{Seed: 3, PSNDrop: 0.25},
			func(st rdma.TransportStats) string {
				if st.PSNDrops == 0 {
					return "no PSN drops"
				}
				return ""
			}},
		{"verb-errors/seed1", &faults.RDMASchedule{Seed: 1, VerbError: 0.30},
			func(st rdma.TransportStats) string {
				if st.VerbErrors == 0 || st.VerbRetries == 0 {
					return "no verb errors retried"
				}
				return ""
			}},
		{"qp-error-boundaries", &faults.RDMASchedule{
			QPError: faults.CrashSchedule{Fixed: []uint64{1, 3}}},
			func(st rdma.TransportStats) string {
				if st.QPErrors != 2 || st.QPRecoveries != 2 {
					return fmt.Sprintf("QP errors/recoveries = %d/%d, want 2/2", st.QPErrors, st.QPRecoveries)
				}
				if st.Fallbacks == 0 {
					return "Error-state sends never fell back"
				}
				return ""
			}},
		{"sustained-outage", &faults.RDMASchedule{
			QPError:     faults.CrashSchedule{Fixed: []uint64{1}},
			OutageStart: 1, OutageLen: 2},
			func(st rdma.TransportStats) string {
				if st.QPErrors != 1 || st.QPRecoveries != 1 {
					return fmt.Sprintf("QP errors/recoveries = %d/%d, want recovery only after the outage", st.QPErrors, st.QPRecoveries)
				}
				return ""
			}},
		{"mr-invalidate", &faults.RDMASchedule{
			MRInvalidate: faults.CrashSchedule{Fixed: []uint64{2}}},
			func(st rdma.TransportStats) string {
				if st.MRInvalidations != 1 || st.Reregistrations != 1 {
					return "region never invalidated"
				}
				if st.Replayed == 0 {
					return "invalidated verbs never replayed"
				}
				return ""
			}},
		{"combined/seed1", &faults.RDMASchedule{Seed: 1,
			VerbError: 0.15, PSNDrop: 0.15,
			QPError:      faults.CrashSchedule{Prob: 0.3},
			MRInvalidate: faults.CrashSchedule{Prob: 0.3}},
			func(st rdma.TransportStats) string { return "" }},
	}
	// Nightly sweep: OMNIWINDOW_EXTRA_SEEDS widens the fixed table with
	// derived seeds on the combined schedule (table base 4; packet chaos,
	// controller chaos and fabric chaos hold bases 1-3).
	for _, s := range faults.ExtraSeeds(4) {
		cases = append(cases, struct {
			name      string
			sched     *faults.RDMASchedule
			exercised func(st rdma.TransportStats) string
		}{fmt.Sprintf("combined/seed%d", s),
			&faults.RDMASchedule{Seed: s,
				VerbError: 0.15, PSNDrop: 0.15,
				QPError:      faults.CrashSchedule{Seed: s, Prob: 0.3},
				MRInvalidate: faults.CrashSchedule{Seed: s, Prob: 0.3}},
			func(st rdma.TransportStats) string { return "" }})
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := runRDMAChaos(t, func(c *Config) { c.RDMAFaults = tc.sched })
			st := d.rdma.Stats()
			if msg := tc.exercised(st); msg != "" {
				t.Fatalf("%s: %+v", msg, st)
			}
			if st.Lost != 0 {
				t.Fatalf("within-budget schedule lost %d records: %+v", st.Lost, st)
			}
			for _, w := range d.Results() {
				if w.Degraded || w.Incomplete || w.MissingAFRs != 0 || w.ShedAFRs != 0 {
					t.Fatalf("within-budget window [%d,%d] not clean: %+v", w.Start, w.End, w)
				}
			}
			if !reflect.DeepEqual(baseline.Results(), d.Results()) {
				t.Fatalf("chaos results differ from fault-free run:\nfault-free: %+v\nchaos:      %+v",
					baseline.Results(), d.Results())
			}
		})
	}
}

// TestRDMAChaosBeyondBudgetDegrades drives the transport past its replay
// budget: every verb's request is lost in flight and the replay window is
// far smaller than a sub-window's traffic, so evicted verbs are gone for
// good. The windows must come out explicitly Degraded, and the
// MissingAFRs/ShedAFRs accounting must reconcile exactly against the
// transport's own loss count — while the records still inside the window
// are repaired through mid-window fallback, proving loss and handoff
// coexist without double-counting.
func TestRDMAChaosBeyondBudgetDegrades(t *testing.T) {
	d := runRDMAChaos(t, func(c *Config) {
		c.Plan = window.Tumbling(1) // one sub-window per window: exact reconciliation
		c.RDMAFaults = &faults.RDMASchedule{Seed: 1, PSNDrop: 1.0}
		c.RDMAReplayDepth = 8
		c.RetryLimit = 2
	})
	st := d.rdma.Stats()
	if st.Lost == 0 {
		t.Fatalf("beyond-budget schedule lost nothing: %+v", st)
	}
	if d.Stats().FallbackAFRs == 0 {
		t.Fatal("records still in the replay window must fall back, not vanish")
	}
	totalMissing, totalShed, degraded := 0, 0, 0
	for _, w := range d.Results() {
		if w.MissingAFRs != w.ShedAFRs {
			t.Fatalf("window [%d,%d]: Missing %d != Shed %d — RDMA losses must charge both",
				w.Start, w.End, w.MissingAFRs, w.ShedAFRs)
		}
		if w.MissingAFRs > 0 {
			if !w.Degraded || !w.Incomplete {
				t.Fatalf("lossy window [%d,%d] not marked Degraded+Incomplete: %+v", w.Start, w.End, w)
			}
			degraded++
		}
		totalMissing += w.MissingAFRs
		totalShed += w.ShedAFRs
	}
	if degraded == 0 {
		t.Fatal("no window marked Degraded despite transport losses")
	}
	// Tumbling(1): every sub-window appears in exactly one window, so the
	// window-level accounting must reconcile 1:1 with the transport's
	// loss count.
	if totalMissing != st.Lost {
		t.Fatalf("windows report %d missing AFRs, transport lost %d — accounting does not reconcile",
			totalMissing, st.Lost)
	}
}

// TestRDMAChaosFallbackNeverDoubleCounts is the handoff property test:
// over randomized schedules (including ones that force mid-window
// transport switches and genuine loss), no flow's value ever exceeds the
// fault-free run's — a double-counted record would inflate it — and any
// run the transport reports lossless is byte-identical.
func TestRDMAChaosFallbackNeverDoubleCounts(t *testing.T) {
	baseline := runRDMAChaos(t, nil)
	meta := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 12; trial++ {
		sched := &faults.RDMASchedule{
			Seed:      meta.Uint64(),
			VerbError: meta.Float64() * 0.4,
			PSNDrop:   meta.Float64() * 0.6,
			QPError:   faults.CrashSchedule{Seed: meta.Uint64(), Prob: meta.Float64() * 0.4},
		}
		depth := 0 // default (deep) window
		if meta.Intn(2) == 1 {
			depth = 4 + meta.Intn(12) // shallow: forces evictions
		}
		d := runRDMAChaos(t, func(c *Config) {
			c.RDMAFaults = sched
			c.RDMAReplayDepth = depth
			c.RetryLimit = 2
		})
		st := d.rdma.Stats()
		if st.Lost == 0 {
			if !reflect.DeepEqual(baseline.Results(), d.Results()) {
				t.Fatalf("trial %d (depth %d): lossless run not byte-identical", trial, depth)
			}
			continue
		}
		base, got := baseline.Results(), d.Results()
		if len(base) != len(got) {
			t.Fatalf("trial %d: %d windows vs baseline %d", trial, len(got), len(base))
		}
		for i, w := range got {
			for k, v := range w.Values {
				if bv := base[i].Values[k]; v > bv {
					t.Fatalf("trial %d window [%d,%d]: flow %v counted %d > fault-free %d — double-counted across the handoff",
						trial, w.Start, w.End, k, v, bv)
				}
			}
			if w.MissingAFRs > 0 && !w.Degraded {
				t.Fatalf("trial %d: lossy window [%d,%d] not flagged: %+v", trial, w.Start, w.End, w)
			}
		}
	}
}

// TestRDMAChaosFailoverReregisters integrates the transport with the hot
// standby: a scheduled primary crash mid-collection promotes the standby,
// which owns fresh memory — the transport must re-register its region,
// rebuild the AddressMAT, and replay the in-flight sub-window's verbs
// into the new registration, keeping the run byte-identical to a
// crash-free one.
func TestRDMAChaosFailoverReregisters(t *testing.T) {
	baseline := runRDMAChaos(t, nil)
	d := runRDMAChaos(t, func(c *Config) {
		c.CheckpointDir = t.TempDir()
		c.CheckpointEvery = 1
		c.Shards = 4
		c.Standby = true
		c.Crash = &faults.CrashSchedule{Fixed: []uint64{2}}
	})
	if d.Stats().Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", d.Stats().Failovers)
	}
	st := d.rdma.Stats()
	if st.Reregistrations == 0 {
		t.Fatal("promoted standby never re-registered the memory region")
	}
	if st.Lost != 0 {
		t.Fatalf("failover lost %d records despite the replay window", st.Lost)
	}
	if !reflect.DeepEqual(baseline.Results(), d.Results()) {
		t.Fatalf("failover run differs from crash-free run:\ncrash-free: %+v\nfailover:   %+v",
			baseline.Results(), d.Results())
	}
}

// TestRDMAChaosDeterministic: the same schedule must produce the same
// run — RDMA fault schedules are reproducible test cases, not flakes.
func TestRDMAChaosDeterministic(t *testing.T) {
	run := func() *Deployment {
		return runRDMAChaos(t, func(c *Config) {
			c.RDMAFaults = &faults.RDMASchedule{Seed: 5,
				VerbError: 0.2, PSNDrop: 0.2,
				QPError: faults.CrashSchedule{Prob: 0.3}}
		})
	}
	d1, d2 := run(), run()
	if d1.rdma.Stats() != d2.rdma.Stats() {
		t.Fatalf("same schedule, different transport stats:\n%+v\n%+v", d1.rdma.Stats(), d2.rdma.Stats())
	}
	if d1.Stats() != d2.Stats() {
		t.Fatalf("same schedule, different run stats:\n%+v\n%+v", d1.Stats(), d2.Stats())
	}
	if !reflect.DeepEqual(d1.Results(), d2.Results()) {
		t.Fatal("same schedule, different window results")
	}
}
