package omniwindow

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"omniwindow/internal/controller"
	"omniwindow/internal/faults"
	"omniwindow/internal/wire"
)

// Disk chaos: the durability layer under a faulty medium. The properties
// proven here are the storage failure doctrine end to end:
//
//   - The live window stream NEVER changes: under any disk fault — or
//     with durable writes suspended entirely — emitted windows stay
//     byte-identical to the fault-free run. Disk trouble is visible only
//     in Stats (DurabilityGaps, QuarantinedSegments) and virtual IO time.
//   - After a crash-restart, every recovered window is either
//     byte-identical to the fault-free run's, or explicitly marked
//     Incomplete — damaged durable state degrades loudly, never silently.
//   - Recovered-vs-quarantined LSN accounting reconciles exactly: every
//     frame written before the crash is either replayed or inside a
//     reported Lost range, never both, never neither.

// diskConfig is durableConfig plus a disk fault schedule and a pinned
// shard count (op indexes must not depend on GOMAXPROCS).
func diskConfig(dir string, every int, crash *faults.CrashSchedule, sched *faults.DiskSchedule) Config {
	cfg := durableConfig(dir, every, crash)
	cfg.Shards = 2
	cfg.DiskFaults = sched
	return cfg
}

// newDisk builds a deployment (running recovery if the directory holds
// durable state) without feeding it traffic.
func newDisk(t *testing.T, cfg Config) *Deployment {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// runDisk builds and runs one deployment over the full chaos trace.
func runDisk(t *testing.T, cfg Config) *Deployment {
	t.Helper()
	d := newDisk(t, cfg)
	d.RunFor(chaosTrace(), 500*ms)
	return d
}

// healthyOps measures how many filesystem operations a fault-free durable
// run issues, so ENOSPC windows can be placed at run-relative positions
// (op counts vary with shard layout, never with the machine).
func healthyOps(t *testing.T, every int) uint64 {
	t.Helper()
	d := runDisk(t, diskConfig(t.TempDir(), every, nil, &faults.DiskSchedule{}))
	ops := d.store.FSOps()
	if ops == 0 {
		t.Fatal("fault-free durable run issued no filesystem operations")
	}
	if err := d.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	return ops
}

// assertIdenticalOrIncomplete checks every got window against the
// baseline window with the same span: byte-identical, or explicitly
// marked Incomplete. Returns how many were Incomplete.
func assertIdenticalOrIncomplete(t *testing.T, baseline, got []controller.WindowResult) int {
	t.Helper()
	byKey := make(map[[2]uint64]controller.WindowResult, len(baseline))
	for _, w := range baseline {
		byKey[[2]uint64{w.Start, w.End}] = w
	}
	incomplete := 0
	for _, w := range got {
		b, ok := byKey[[2]uint64{w.Start, w.End}]
		if !ok {
			t.Fatalf("window [%d,%d] has no fault-free counterpart", w.Start, w.End)
		}
		if reflect.DeepEqual(b, w) {
			continue
		}
		if !w.Incomplete {
			t.Fatalf("window [%d,%d] differs from fault-free run but is not marked Incomplete:\nfault-free: %+v\ngot:        %+v",
				w.Start, w.End, b, w)
		}
		incomplete++
	}
	return incomplete
}

// TestDiskChaosFaultFreeScheduleUnchanged: a zero-value DiskSchedule is a
// healthy disk — no faults fire, no retries burn, and the run is
// byte-identical to one without the fault seam at all.
func TestDiskChaosFaultFreeScheduleUnchanged(t *testing.T) {
	baseline := runChaos(t, nil)
	d := runDisk(t, diskConfig(t.TempDir(), 1, nil, &faults.DiskSchedule{}))
	if !reflect.DeepEqual(baseline.Results(), d.Results()) {
		t.Fatal("fault-free DiskSchedule changed window results")
	}
	if d.store.WALErrors() != 0 || d.Stats().DurabilityGaps != 0 || d.DurabilityDegraded() {
		t.Fatalf("fault-free schedule recorded faults: walErrs=%d gaps=%d degraded=%v",
			d.store.WALErrors(), d.Stats().DurabilityGaps, d.DurabilityDegraded())
	}
	if err := d.CloseDurability(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskChaosTransientFaultsByteIdentical: transient EIO/short-write/
// slow-IO faults under a generous retry budget never reach the window
// stream — retries absorb them, the windows match the fault-free run
// exactly, and the cost shows up only as WAL errors and virtual IO time.
func TestDiskChaosTransientFaultsByteIdentical(t *testing.T) {
	baseline := runChaos(t, nil)
	seeds := []uint64{7, 21, 42}
	seeds = append(seeds, faults.ExtraSeeds(7)...)
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := diskConfig(t.TempDir(), 1, nil, &faults.DiskSchedule{
				Seed: seed, WriteEIO: 0.10, ShortWrite: 0.05, SlowIO: 0.10,
			})
			cfg.DurabilityRetryLimit = 10
			d := runDisk(t, cfg)
			if !reflect.DeepEqual(baseline.Results(), d.Results()) {
				t.Fatal("transient disk faults changed the live window stream")
			}
			if d.DurabilityDegraded() {
				t.Fatalf("retry budget 10 should absorb 10%% transient faults (gaps=%d)", d.Stats().DurabilityGaps)
			}
			if d.store.WALErrors() == 0 {
				t.Fatal("schedule injected no faults — rates too low for the op count")
			}
			if d.Stats().CollectVirtual <= baseline.Stats().CollectVirtual {
				t.Fatal("retry backoff and slow-IO latency were not charged to virtual time")
			}
			if err := d.CloseDurability(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDiskChaosENOSPCDegradesAndHeals: a bounded full-disk stretch flips
// the deployment to degraded durability — windows keep flowing
// byte-identical, skipped writes are counted as gaps — and the first
// boundary probe after space returns heals back to durable mode with a
// fresh checkpoint.
func TestDiskChaosENOSPCDegradesAndHeals(t *testing.T) {
	baseline := runChaos(t, nil)
	total := healthyOps(t, 1)
	cfg := diskConfig(t.TempDir(), 1, nil, &faults.DiskSchedule{
		// Once degraded, appends are skipped, so only the per-boundary
		// heal probe advances the op counter — keep the window tiny so
		// it closes within the remaining boundaries.
		ENOSPCStart: total * 2 / 5,
		ENOSPCLen:   2,
	})
	d := runDisk(t, cfg)
	if !reflect.DeepEqual(baseline.Results(), d.Results()) {
		t.Fatal("degraded durability changed the live window stream")
	}
	st := d.Stats()
	if st.DurabilityGaps == 0 {
		t.Fatal("ENOSPC window did not trigger degraded mode (no gaps counted)")
	}
	if st.DurabilityHeals == 0 {
		t.Fatal("boundary probe never healed after the ENOSPC window closed")
	}
	if d.DurabilityDegraded() {
		t.Fatal("deployment still degraded after space returned")
	}
	if err := d.DurabilityErr(); err == nil {
		t.Fatal("first fault was not recorded as the audit-trail DurabilityErr")
	}
	if err := d.CloseDurability(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskChaosCrashAfterHealByteIdentical: the heal checkpoint fully
// covers the degraded stretch, so a crash-restart AFTER healing recovers
// byte-identically — gaps that never met a crash cost nothing.
func TestDiskChaosCrashAfterHealByteIdentical(t *testing.T) {
	baseline := runChaos(t, nil)
	total := healthyOps(t, 1)
	dir := t.TempDir()
	const crashAt = 3
	sched := &faults.DiskSchedule{
		// Tiny window: degraded mode issues ~1 probe op per boundary,
		// so the heal must land before the crash at sub-window 3.
		ENOSPCStart: total / 5,
		ENOSPCLen:   2,
	}
	d1 := runDisk(t, diskConfig(dir, 1, &faults.CrashSchedule{Fixed: []uint64{crashAt}}, sched))
	if sw, ok := d1.Crashed(); !ok || sw != crashAt {
		t.Fatalf("crash did not fire at %d: ok=%v sw=%d", crashAt, ok, sw)
	}
	st := d1.Stats()
	if st.DurabilityGaps == 0 || st.DurabilityHeals == 0 {
		t.Fatalf("scenario needs degrade+heal before the crash: gaps=%d heals=%d", st.DurabilityGaps, st.DurabilityHeals)
	}
	if d1.DurabilityDegraded() {
		t.Fatal("scenario needs the heal to land before the crash")
	}

	var combined []controller.WindowResult
	for _, w := range d1.Results() {
		if w.End <= crashAt {
			combined = append(combined, w)
		}
	}
	d2 := newDisk(t, diskConfig(dir, 1, nil, &faults.DiskSchedule{}))
	d2.RunFor(traceTail(chaosTrace(), crashAt), 500*ms)
	combined = append(combined, d2.Results()...)
	if !reflect.DeepEqual(baseline.Results(), combined) {
		t.Fatalf("crash after heal not exactly recovered:\nfault-free: %+v\nstitched:   %+v",
			baseline.Results(), combined)
	}
	if err := d2.CloseDurability(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskChaosCrashWhileDegraded: a crash INSIDE a degraded stretch is
// where gaps become damage. The boundaries after the last durable
// checkpoint cannot be replayed; the windows spanning them must come back
// explicitly Incomplete — and every other window byte-identical.
func TestDiskChaosCrashWhileDegraded(t *testing.T) {
	baseline := runChaos(t, nil)
	total := healthyOps(t, 1)
	dir := t.TempDir()
	const crashAt = 3
	sched := &faults.DiskSchedule{
		ENOSPCStart: total / 4,
		ENOSPCLen:   1 << 40, // the disk never frees up
	}
	d1 := runDisk(t, diskConfig(dir, 1, &faults.CrashSchedule{Fixed: []uint64{crashAt}}, sched))
	if sw, ok := d1.Crashed(); !ok || sw != crashAt {
		t.Fatalf("crash did not fire at %d: ok=%v sw=%d", crashAt, ok, sw)
	}
	if !d1.DurabilityDegraded() {
		t.Fatal("scenario needs the crash to land inside the degraded stretch")
	}
	// The live stream stayed byte-identical right up to the crash.
	if pre := d1.Results(); !reflect.DeepEqual(pre, baseline.Results()[:len(pre)]) {
		t.Fatal("degraded pre-crash windows diverged from the fault-free run")
	}

	d2 := newDisk(t, diskConfig(dir, 1, nil, &faults.DiskSchedule{}))
	d2.RunFor(traceTail(chaosTrace(), crashAt), 500*ms)
	incomplete := assertIdenticalOrIncomplete(t, baseline.Results(), d2.Results())
	if incomplete == 0 {
		t.Fatal("crash inside a degraded stretch must surface Incomplete windows")
	}
	if err := d2.CloseDurability(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskChaosCrashRestartProperty is the seeded sweep: random disk
// schedules (EIO, short writes, bit rot, slow IO) × crash-restart. No
// matter where the faults land — in segments, in checkpoints, caught by
// the scrubber or only at recovery — every recovered window is
// byte-identical to the fault-free run or explicitly Incomplete.
func TestDiskChaosCrashRestartProperty(t *testing.T) {
	baseline := runChaos(t, nil)
	seeds := []uint64{1, 2, 3, 5}
	seeds = append(seeds, faults.ExtraSeeds(11)...)
	const crashAt = 2
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			sched := &faults.DiskSchedule{
				Seed: seed, WriteEIO: 0.05, ShortWrite: 0.03, BitRot: 0.03, SlowIO: 0.05,
			}
			cfg := diskConfig(dir, 1, &faults.CrashSchedule{Fixed: []uint64{crashAt}}, sched)
			cfg.DurabilityRetryLimit = 6
			cfg.WALSegmentBytes = 2048
			d1 := runDisk(t, cfg)
			if sw, ok := d1.Crashed(); !ok || sw != crashAt {
				t.Fatalf("crash did not fire at %d: ok=%v sw=%d", crashAt, ok, sw)
			}
			if pre := d1.Results(); !reflect.DeepEqual(pre, baseline.Results()[:len(pre)]) {
				t.Fatal("faulty-disk pre-crash windows diverged from the fault-free run")
			}

			// Restart on the same faulty disk: recovery itself must cope
			// with injected read errors and whatever the crash tore.
			cfg2 := diskConfig(dir, 1, nil, sched)
			cfg2.DurabilityRetryLimit = 6
			cfg2.WALSegmentBytes = 2048
			d2 := newDisk(t, cfg2)
			d2.RunFor(traceTail(chaosTrace(), crashAt), 500*ms)
			assertIdenticalOrIncomplete(t, baseline.Results(), d2.Results())
			if err := d2.CloseDurability(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDiskChaosQuarantineLSNReconciliation corrupts one WAL segment on
// disk between crash and restart, then audits the recovery books: the
// quarantined file's frames all land inside reported Lost ranges, no
// replayed frame does, and together they account for every LSN the
// pre-crash run issued — recovered + quarantined = everything, exactly.
func TestDiskChaosQuarantineLSNReconciliation(t *testing.T) {
	baseline := runChaos(t, nil)
	dir := t.TempDir()
	const crashAt, every = 3, 5 // no checkpoint before the crash: all state is WAL
	cfg := diskConfig(dir, every, &faults.CrashSchedule{Fixed: []uint64{crashAt}}, &faults.DiskSchedule{})
	cfg.WALSegmentBytes = 2048 // force rotation: several segments per chain
	d1 := runDisk(t, cfg)
	if sw, ok := d1.Crashed(); !ok || sw != crashAt {
		t.Fatalf("crash did not fire at %d: ok=%v sw=%d", crashAt, ok, sw)
	}
	issued := d1.store.LSN()
	if issued == 0 {
		t.Fatal("pre-crash run issued no WAL frames")
	}

	// Enumerate every frame on disk, then corrupt one mid-chain segment.
	lsnsByFile := walLSNsByFile(t, dir)
	victim := ""
	for path, lsns := range lsnsByFile {
		if strings.Contains(filepath.Base(path), "-ctl-") || len(lsns) < 2 {
			continue
		}
		if victim == "" || path < victim {
			victim = path // deterministic pick: lowest-sorted data segment
		}
	}
	if victim == "" {
		t.Fatalf("no multi-frame data segment to corrupt; files: %v", lsnsByFile)
	}
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40 // inside the last frame: CRC check must fail
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	victimLSNs := make(map[uint64]bool)
	for _, l := range lsnsByFile[victim] {
		victimLSNs[l] = true
	}

	cfg2 := diskConfig(dir, every, nil, &faults.DiskSchedule{})
	cfg2.WALSegmentBytes = 2048
	d2 := newDisk(t, cfg2)
	d2.RunFor(traceTail(chaosTrace(), crashAt), 500*ms)

	if q := d2.store.Quarantined(); q < 1 {
		t.Fatalf("corrupt segment was not quarantined (quarantined=%d)", q)
	}
	if st := d2.Stats(); st.QuarantinedSegments < 1 {
		t.Fatalf("Stats did not fold the quarantine tally: %+v", st)
	}
	if _, err := os.Stat(victim + ".quarantined"); err != nil {
		t.Fatalf("victim was not renamed aside: %v", err)
	}

	// The reconciliation: every issued LSN is exactly one of replayed or
	// lost. Whole-file quarantine means lost == the victim's frames.
	lost := d2.store.Lost()
	inLost := func(l uint64) bool {
		for _, r := range lost {
			if l >= r.From && l <= r.To {
				return true
			}
		}
		return false
	}
	for l := uint64(1); l <= issued; l++ {
		if victimLSNs[l] != inLost(l) {
			t.Fatalf("LSN %d: quarantined=%v but inLost=%v (lost=%v)", l, victimLSNs[l], inLost(l), lost)
		}
	}

	incomplete := assertIdenticalOrIncomplete(t, baseline.Results(), d2.Results())
	if incomplete == 0 {
		t.Fatal("quarantined frames must surface as Incomplete windows")
	}
	if err := d2.CloseDurability(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskChaosDeterministic: the same schedule seed twice yields the
// same window stream AND the same fault accounting — the chaos suite is
// replayable evidence, not noise.
func TestDiskChaosDeterministic(t *testing.T) {
	run := func() (*Deployment, Stats) {
		d := runDisk(t, func() Config {
			cfg := diskConfig(t.TempDir(), 1, nil, &faults.DiskSchedule{
				Seed: 99, WriteEIO: 0.15, ShortWrite: 0.05, SlowIO: 0.2,
			})
			cfg.DurabilityRetryLimit = 8
			return cfg
		}())
		return d, d.Stats()
	}
	d1, s1 := run()
	d2, s2 := run()
	if !reflect.DeepEqual(d1.Results(), d2.Results()) {
		t.Fatal("same disk seed produced different window streams")
	}
	if s1.DurabilityGaps != s2.DurabilityGaps || d1.store.WALErrors() != d2.store.WALErrors() ||
		d1.store.Rotations() != d2.store.Rotations() {
		t.Fatalf("same disk seed produced different fault accounting:\n%+v walErrs=%d rot=%d\n%+v walErrs=%d rot=%d",
			s1, d1.store.WALErrors(), d1.store.Rotations(), s2, d2.store.WALErrors(), d2.store.Rotations())
	}
	d1.CloseDurability()
	d2.CloseDurability()
}

// walLSNsByFile decodes every WAL segment in dir and returns the LSNs
// each file carries, tolerating torn tails (a crash mid-append is normal)
// but failing the test on any other decode error — the files were written
// by a healthy run.
func walLSNsByFile(t *testing.T, dir string) map[string][]uint64 {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]uint64)
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := wire.DecodeSegmentHeader(data); err != nil {
			t.Fatalf("%s: bad segment header: %v", name, err)
		}
		rest := data[wire.SegmentHeaderSize:]
		for len(rest) > 0 {
			rec, n, err := wire.DecodeWALRecord(rest)
			if errors.Is(err, wire.ErrTruncated) {
				break // torn tail: the crash interrupted this append
			}
			if err != nil {
				t.Fatalf("%s: frame decode: %v", name, err)
			}
			out[path] = append(out[path], rec.LSN)
			rest = rest[n:]
		}
	}
	return out
}
