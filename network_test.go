package omniwindow

import (
	"testing"

	"omniwindow/internal/afr"
	"omniwindow/internal/packet"
	"omniwindow/internal/trace"
	"omniwindow/internal/window"
)

// TestNetworkWideConsistency chains two deployments by hand: the
// upstream switch stamps each packet's sub-window and the downstream one
// adopts the stamp, so their per-window per-flow counts agree exactly
// even though the downstream switch observes packets after a link delay
// that pushes many of them past its local sub-window boundaries.
//
// This is the low-level regression for ProcessAndForward itself; the
// topology-level port of the same property — including switch failures,
// epochs and quarantine — lives in internal/fabric (TestFabricConsistency
// and the chaos tests), which wires deployments over netsim links instead
// of this manual loop.
func TestNetworkWideConsistency(t *testing.T) {
	pkts := burstTrace(map[int64][]int{
		50 * ms:  {1, 2},
		150 * ms: {1, 3},
		250 * ms: {2, 3},
		350 * ms: {1},
		450 * ms: {2},
	}, 30)

	upstream, err := New(freqConfig(window.Tumbling(5), 1, false))
	if err != nil {
		t.Fatal(err)
	}
	downstream, err := New(freqConfig(window.Tumbling(5), 1, false))
	if err != nil {
		t.Fatal(err)
	}

	const linkDelay = 70 * ms // most of a sub-window: local clocks would disagree wildly
	for i := range pkts {
		for _, fwd := range upstream.ProcessAndForward(&pkts[i]) {
			if !fwd.OW.HasSubWindow {
				t.Fatal("upstream did not stamp the packet")
			}
			fwd.Time += linkDelay
			downstream.ProcessPacket(fwd)
		}
	}
	up := upstream.finishAt(500 * ms)
	down := downstream.finishAt(500*ms + linkDelay)

	if len(up) == 0 || len(up) != len(down) {
		t.Fatalf("window counts differ: %d vs %d", len(up), len(down))
	}
	for i := range up {
		if up[i].Start != down[i].Start || up[i].End != down[i].End {
			t.Fatalf("window %d ranges differ", i)
		}
		for k, v := range up[i].Values {
			if down[i].Values[k] != v {
				t.Fatalf("window %d key %v: upstream %d downstream %d — consistency broken",
					i, k, v, down[i].Values[k])
			}
		}
	}
}

// finishAt is a test helper: flush at the given virtual time.
func (d *Deployment) finishAt(at int64) []WindowResult {
	d.Tick(at)
	d.now = at + 1<<40
	d.runDueCollections()
	return d.results
}

// TestNetworkWideSpikeHandling sends a packet whose stamp is older than
// every preserved sub-window at the downstream switch: it must surface as
// a latency spike, not corrupt a region.
func TestNetworkWideSpikeHandling(t *testing.T) {
	d, err := New(freqConfig(window.Tumbling(5), 1, false))
	if err != nil {
		t.Fatal(err)
	}
	// Advance the switch to sub-window 5 with normal traffic.
	d.ProcessPacket(&packet.Packet{Key: fk(1), Size: 100, Time: 550 * ms})
	// A severely delayed packet stamped sub-window 0 arrives.
	late := &packet.Packet{Key: fk(2), Size: 100, Time: 560 * ms,
		OW: packet.OWHeader{SubWindow: 0, HasSubWindow: true}}
	d.ProcessPacket(late)
	if d.Stats().Spikes != 1 {
		t.Fatalf("spikes = %d want 1", d.Stats().Spikes)
	}
}

// TestSessionSignalDeployment runs session windows end to end: windows
// terminate after idle gaps, not on a fixed period.
func TestSessionSignalDeployment(t *testing.T) {
	cfg := freqConfig(window.Tumbling(1), 1, false)
	cfg.Signal = &window.SessionSignal{IdleGap: 50 * ms}
	cfg.SubWindow = 0 // session windows have no fixed length
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two activity sessions separated by 200 ms of silence.
	pkts := append(burstTrace(map[int64][]int{50 * ms: {1}}, 20),
		burstTrace(map[int64][]int{350 * ms: {2}}, 20)...)
	results := d.Run(pkts)
	if len(results) != 2 {
		t.Fatalf("sessions = %d want 2", len(results))
	}
	if results[0].Values[fk(1)] != 20 || results[1].Values[fk(2)] != 20 {
		t.Fatalf("session contents wrong: %v / %v", results[0].Values, results[1].Values)
	}
}

// TestCounterSignalDeployment runs count-based windows: every 500 packets
// terminate a sub-window regardless of time.
func TestCounterSignalDeployment(t *testing.T) {
	cfg := freqConfig(window.Tumbling(1), 1, false)
	cfg.Signal = &window.CounterSignal{Threshold: 500}
	cfg.SubWindow = 0
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pkts := burstTrace(map[int64][]int{50 * ms: {1, 2, 3, 4, 5}}, 300) // 1500 packets
	results := d.Run(pkts)
	// The packet that reaches the threshold opens the next window, so
	// 1500 packets split 499 / 500 / 500 / 1.
	if len(results) != 4 {
		t.Fatalf("count windows = %d want 4", len(results))
	}
	var total uint64
	sizes := make([]uint64, 0, len(results))
	for _, w := range results {
		var s uint64
		for _, v := range w.Values {
			s += v
		}
		sizes = append(sizes, s)
		total += s
	}
	if total != 1500 {
		t.Fatalf("total measured = %d want 1500", total)
	}
	if sizes[1] != 500 || sizes[2] != 500 {
		t.Fatalf("interior count windows = %v want 500 each", sizes)
	}
}

// TestExistenceKind verifies the existence merge pattern end to end.
func TestExistenceKind(t *testing.T) {
	cfg := freqConfig(window.Tumbling(5), 1, false)
	cfg.Kind = afr.Existence
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pkts := burstTrace(map[int64][]int{50 * ms: {1}, 350 * ms: {2}}, 40)
	results := d.RunFor(pkts, 500*ms)
	if len(results) != 1 {
		t.Fatalf("windows = %d", len(results))
	}
	if results[0].Values[fk(1)] != 1 || results[0].Values[fk(2)] != 1 {
		t.Fatalf("existence values wrong: %v", results[0].Values)
	}
}

var _ = trace.Millisecond // keep the trace import if helpers change

func TestFeasibilityReport(t *testing.T) {
	d, err := New(freqConfig(window.Tumbling(5), 1, false))
	if err != nil {
		t.Fatal(err)
	}
	pkts := burstTrace(map[int64][]int{50 * ms: {1, 2, 3}}, 50)
	d.RunFor(pkts, 500*ms)
	f := d.Feasibility()
	if !f.TwoRegionsSufficient {
		t.Fatalf("two regions should suffice: %+v", f)
	}
	if f.WorstCR <= 0 || f.Headroom < 2 {
		t.Fatalf("implausible feasibility: %+v", f)
	}
}
